module Ast = Graql_lang.Ast
module Loc = Graql_lang.Loc
module Table = Graql_storage.Table
module Value = Graql_storage.Value
module Csv = Graql_storage.Csv
module Subgraph = Graql_graph.Subgraph
module Pool = Graql_parallel.Domain_pool
module Cancel = Graql_parallel.Cancel
module Metrics = Graql_obs.Metrics
module Trace = Graql_obs.Trace
module Slow_log = Graql_obs.Slow_log
module Slo = Graql_obs.Slo
module Query_log = Graql_obs.Query_log
module Ledger = Graql_obs.Ledger

type outcome =
  | O_table of Table.t
  | O_subgraph of Subgraph.t
  | O_message of string
  | O_failed of Graql_error.t

exception Script_error of Loc.t * string

let error loc fmt = Printf.ksprintf (fun msg -> raise (Script_error (loc, msg))) fmt
let norm = String.lowercase_ascii

let default_loader path =
  let ic = open_in_bin path in
  let doc = really_input_string ic (in_channel_length ic) in
  close_in ic;
  doc

let params_of db name = Db.find_param db name

(* ------------------------------------------------------------------ *)
(* Write-ahead logging (DESIGN.md §9)                                  *)

(* Statements with a persistent effect are logged — fsync'd — before they
   are applied. Ingest is logged separately with its loaded bytes inlined
   (see [exec_ingest]); selects into nothing leave no state behind. *)
let stmt_needs_wal = function
  | Ast.Create_table _ | Ast.Create_vertex _ | Ast.Create_edge _
  | Ast.Set_param _ ->
      true
  | Ast.Ingest _ -> false
  | Ast.Select_graph { sg_into = Ast.Into_nothing; _ }
  | Ast.Select_table { st_into = Ast.Into_nothing; _ } ->
      false
  | Ast.Select_graph _ | Ast.Select_table _ -> true

let wal_log db record =
  match Db.wal db with None -> () | Some w -> Wal.append w record

(* ------------------------------------------------------------------ *)
(* Single statements                                                   *)

let exec_ingest ~loader db ~table ~file ~loc =
  let target =
    match Db.find_table db table with
    | Some t -> t
    | None -> error loc "ingest: no such table %S" table
  in
  let doc =
    try loader file
    with Sys_error msg -> error loc "ingest: cannot read %S: %s" file msg
  in
  (* Log the bytes we actually loaded, so replay never depends on the
     source file still existing (or still having the same contents). *)
  wal_log db (Wal.R_ingest { table; file; doc });
  let before = Table.nrows target in
  (* Parse into a staging table first so a malformed file cannot leave the
     target half-ingested: ingest is atomic w.r.t. queries (Sec. II-A2). *)
  let staged =
    try Csv.table_of_csv ~name:table (Table.schema target) doc
    with Failure msg -> error loc "ingest %s: %s" file msg
  in
  Table.reserve target (before + Table.nrows staged);
  Table.iter_rows
    (fun r -> Table.append_row_array target (Table.row staged r))
    staged;
  Db.touch_table db table;
  O_message
    (Printf.sprintf "ingested %d rows into %s (now %d rows)"
       (Table.nrows staged) table
       (before + Table.nrows staged))

let mode_of_graph_select (sg : Ast.select_graph) =
  match sg.Ast.sg_into with
  | Ast.Into_subgraph _ ->
      if List.exists (fun t -> t = Ast.T_star) sg.Ast.sg_targets then
        Path_exec.Keep_all
      else
        Path_exec.Keep_minimal
          (List.filter_map
             (function
               | Ast.T_expr (Ast.E_attr (None, n, _), None) -> Some n
               | _ -> None)
             sg.Ast.sg_targets)
  | Ast.Into_table _ | Ast.Into_nothing -> Path_exec.Keep_all

let exec_select_graph db (sg : Ast.select_graph) =
  let params = params_of db in
  let mode = mode_of_graph_select sg in
  let res =
    Path_exec.run_multipath ~db ~params ~mode
      ~edges_needed:(Explain.edges_needed_of_select sg)
      sg.Ast.sg_path
  in
  match sg.Ast.sg_into with
  | Ast.Into_subgraph name ->
      let sub =
        Results.to_subgraph ~name ~targets:sg.Ast.sg_targets ~loc:sg.Ast.sg_loc
          res
      in
      Db.lock db (fun () -> Db.add_subgraph db sub);
      O_subgraph sub
  | Ast.Into_table name ->
      let table =
        Results.to_table ~name ~targets:sg.Ast.sg_targets ~params
          ~loc:sg.Ast.sg_loc res
      in
      Db.lock db (fun () -> Db.register_result_table db table);
      O_table table
  | Ast.Into_nothing ->
      let table =
        Results.to_table ~name:"result" ~targets:sg.Ast.sg_targets ~params
          ~loc:sg.Ast.sg_loc res
      in
      O_table table

let exec_select_table db (st : Ast.select_table) =
  let params = params_of db in
  let name =
    match st.Ast.st_into with Ast.Into_table n -> n | _ -> "result"
  in
  let table = Table_exec.exec ~db ~params ~name st in
  (match st.Ast.st_into with
  | Ast.Into_table _ -> Db.lock db (fun () -> Db.register_result_table db table)
  | Ast.Into_subgraph _ ->
      error st.Ast.st_loc "a table select cannot produce a subgraph"
  | Ast.Into_nothing -> ());
  O_table table

let exec_stmt ?(loader = default_loader) db stmt =
  if stmt_needs_wal stmt then wal_log db (Wal.R_stmt stmt);
  match stmt with
  | Ast.Create_table { ct_name; ct_cols; ct_loc } ->
      (try Ddl_exec.exec_create_table db ~name:ct_name ~cols:ct_cols ~loc:ct_loc
       with Ddl_exec.Ddl_error (l, m) -> error l "%s" m);
      O_message (Printf.sprintf "created table %s" ct_name)
  | Ast.Create_vertex { cv_name; cv_key; cv_from; cv_where; _ } ->
      Ddl_exec.exec_create_vertex db
        {
          Db.vd_name = cv_name;
          vd_key = cv_key;
          vd_from = cv_from;
          vd_where = cv_where;
        };
      O_message (Printf.sprintf "created vertex type %s" cv_name)
  | Ast.Create_edge { ce_name; ce_src; ce_dst; ce_from; ce_where; _ } ->
      Ddl_exec.exec_create_edge db
        {
          Db.ed_name = ce_name;
          ed_src = ce_src;
          ed_dst = ce_dst;
          ed_from = ce_from;
          ed_where = ce_where;
        };
      O_message (Printf.sprintf "created edge type %s" ce_name)
  | Ast.Ingest { ing_table; ing_file; ing_loc } ->
      exec_ingest ~loader db ~table:ing_table ~file:ing_file ~loc:ing_loc
  | Ast.Set_param { sp_name; sp_value; _ } ->
      Db.set_param db sp_name (Compile_expr.value_of_lit sp_value);
      O_message (Printf.sprintf "set %%%s%%" sp_name)
  | Ast.Select_graph sg -> (
      try exec_select_graph db sg with
      | Path_exec.Exec_error (l, m) | Results.Result_error (l, m) ->
          error l "%s" m
      | Ddl_exec.Ddl_error (l, m) -> error l "%s" m)
  | Ast.Select_table st -> (
      try exec_select_table db st
      with Table_exec.Table_error (l, m) -> error l "%s" m)

(* ------------------------------------------------------------------ *)
(* Dependence analysis (Sec. III-B1)                                   *)

let graph_entity = "__graph__"

let rec expr_names acc = function
  | Ast.E_attr (Some q, _, _) -> norm q :: acc
  | Ast.E_attr (None, _, _) | Ast.E_lit _ -> acc
  | Ast.E_param (p, _) -> ("%" ^ norm p) :: acc
  | Ast.E_binop (_, a, b, _) -> expr_names (expr_names acc a) b
  | Ast.E_unop (_, a, _) | Ast.E_is_null (a, _, _) -> expr_names acc a
  | Ast.E_call (_, args, _) ->
      List.fold_left
        (fun acc -> function
          | Ast.A_expr e -> expr_names acc e
          | Ast.A_star -> acc)
        acc args

let vstep_names acc (v : Ast.vstep) =
  let acc =
    match v.Ast.v_kind with
    | Ast.V_named n -> norm n :: acc
    | Ast.V_any -> acc
    | Ast.V_seeded (sg, vt) -> norm sg :: norm vt :: acc
  in
  match v.Ast.v_cond with Some c -> expr_names acc c | None -> acc

let estep_names acc (e : Ast.estep) =
  let acc =
    match e.Ast.e_kind with Ast.E_named n -> norm n :: acc | Ast.E_any -> acc
  in
  match e.Ast.e_cond with Some c -> expr_names acc c | None -> acc

let rec multipath_names acc = function
  | Ast.M_path { head; segments } ->
      let acc = vstep_names acc head in
      List.fold_left
        (fun acc -> function
          | Ast.Seg_step (e, v) -> vstep_names (estep_names acc e) v
          | Ast.Seg_regex (body, _, _) ->
              List.fold_left
                (fun acc (e, v) -> vstep_names (estep_names acc e) v)
                acc body)
        acc segments
  | Ast.M_and (a, b) | Ast.M_or (a, b) ->
      multipath_names (multipath_names acc a) b

let refs stmt =
  match stmt with
  | Ast.Create_table _ -> []
  | Ast.Create_vertex { cv_from; cv_where; _ } ->
      norm cv_from
      :: (match cv_where with Some c -> expr_names [] c | None -> [])
  | Ast.Create_edge { ce_src; ce_dst; ce_from; ce_where; _ } ->
      (norm ce_src.Ast.ve_type :: norm ce_dst.Ast.ve_type
       :: (match ce_from with Some t -> [ norm t ] | None -> []))
      @ (match ce_where with Some c -> expr_names [] c | None -> [])
  | Ast.Ingest { ing_table; _ } -> [ norm ing_table ]
  | Ast.Set_param _ -> []
  | Ast.Select_graph { sg_path; sg_targets; _ } ->
      graph_entity :: multipath_names [] sg_path
      @ List.concat_map
          (function
            | Ast.T_star -> []
            | Ast.T_expr (e, _) -> expr_names [] e)
          sg_targets
  | Ast.Select_table st -> (
      let sources =
        match st.Ast.st_from with
        | Ast.From_table (n, _) -> [ norm n ]
        | Ast.From_join (srcs, w) ->
            List.map (fun (n, _) -> norm n) srcs
            @ (match w with Some w -> expr_names [] w | None -> [])
      in
      sources
      @ (match st.Ast.st_where with Some w -> expr_names [] w | None -> [])
      @ List.concat_map
          (function
            | Ast.T_star -> []
            | Ast.T_expr (e, _) -> expr_names [] e)
          st.Ast.st_targets)

let defs stmt =
  match stmt with
  | Ast.Create_vertex { cv_name; _ } -> [ norm cv_name; graph_entity ]
  | Ast.Create_edge { ce_name; _ } -> [ norm ce_name; graph_entity ]
  | Ast.Ingest { ing_table; _ } -> [ norm ing_table; graph_entity ]
  | Ast.Set_param { sp_name; _ } -> [ "%" ^ norm sp_name ]
  | Ast.Create_table { ct_name; _ } -> [ norm ct_name ]
  | Ast.Select_graph _ | Ast.Select_table _ -> (
      match Ast.stmt_defines stmt with Some n -> [ norm n ] | None -> [])

let dependence_edges script =
  let stmts = Array.of_list script in
  let n = Array.length stmts in
  let refs_a = Array.map refs stmts and defs_a = Array.map defs stmts in
  let intersects a b = List.exists (fun x -> List.mem x b) a in
  let edges = ref [] in
  for j = 1 to n - 1 do
    for i = 0 to j - 1 do
      (* RAW: j reads what i defines. WAW: both define the same name.
         WAR: j redefines what i reads. *)
      if
        intersects defs_a.(i) refs_a.(j)
        || intersects defs_a.(i) defs_a.(j)
        || intersects refs_a.(i) defs_a.(j)
      then edges := (i, j) :: !edges
    done
  done;
  List.rev !edges

(* Per-statement failure capture: a dead statement becomes a typed
   [O_failed] outcome and the rest of the script still executes. Only
   genuinely fatal conditions (OOM, stack overflow) abort the script. *)
let outcome_of_exn = function
  | Script_error (loc, msg) -> O_failed (Graql_error.Exec (loc, msg))
  | e -> (
      match Graql_error.of_exn e with
      | Some err -> O_failed err
      | None -> raise e)

let m_stmts = Metrics.counter "script.statements"
let m_failed = Metrics.counter "script.failed_statements"
let h_stmt_us = Metrics.histogram "script.stmt_us"

(* Statement class = the operation label up to the ':' that carries the
   entity name ("ingest:Offers" -> "ingest"): the granularity at which
   SLO percentiles are tracked. *)
let stmt_class stmt =
  let kind = Ast.stmt_kind stmt in
  match String.index_opt kind ':' with
  | Some i -> String.sub kind 0 i
  | None -> kind

let class_hist class_ = Metrics.histogram ("script.stmt_us." ^ class_)

(* Retry/failover counters live in the scheduling and shard layers;
   reading them by name here keeps the engine decoupled from those
   modules while still letting the query log attribute recovery work to
   the statement that ran. Attribution is exact for sequential scripts;
   statements of the same parallel wave may swap each other's counts. *)
let c_fault_retries = Metrics.counter "fault.retries"
let c_fault_failovers = Metrics.counter "fault.failovers"
let c_sched_retries = Metrics.counter "sched.retries"

let rows_of_outcome = function
  | O_table t -> Table.nrows t
  | O_subgraph sg -> Subgraph.total_vertices sg
  | O_message _ | O_failed _ -> 0

(* Group a statement's child spans by name into (name, count, total ms),
   slowest first — the summary attached to a slow-log entry. *)
let span_summary stmt_span_id =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let count, ms =
        Option.value ~default:(0, 0.0)
          (Hashtbl.find_opt tbl ev.Trace.ev_name)
      in
      Hashtbl.replace tbl ev.Trace.ev_name
        (count + 1, ms +. (ev.Trace.ev_dur_us /. 1000.)))
    (Trace.children stmt_span_id);
  List.sort
    (fun (_, _, a) (_, _, b) -> compare b a)
    (Hashtbl.fold (fun name (count, ms) acc -> (name, count, ms) :: acc) tbl [])

let exec_stmt_outcome ~loader ?cancel db ~index stmt =
  (* Every traced statement runs under a trace id: an ambient one when a
     remote caller (serve, replication) propagated a traceparent, a
     fresh root id otherwise — so WAL records, pool spans and log lines
     produced below all stitch to the same id. *)
  let trace =
    if not (Trace.is_armed ()) then Trace.current_trace ()
    else
      match Trace.current_trace () with
      | "" -> Trace.new_trace_id ()
      | t -> t
  in
  Trace.with_trace trace @@ fun () ->
  let sp =
    Trace.begin_span ~cat:"script"
      ~args:[ ("index", string_of_int index) ]
      ("stmt:" ^ Ast.stmt_kind stmt)
  in
  let query_log = Query_log.enabled () in
  let slow_threshold = Slow_log.threshold_ms () in
  (* The resource ledger is delta-based and not free (Gc.quick_stat +
     a dozen counter folds, twice); capture it only when something
     will carry it — a query-log line or a slow-log entry. *)
  let ledger0 =
    if query_log || slow_threshold <> None then Some (Ledger.start ())
    else None
  in
  let retries0, failovers0 =
    if query_log then
      ( Metrics.counter_value c_fault_retries
        + Metrics.counter_value c_sched_retries,
        Metrics.counter_value c_fault_failovers )
    else (0, 0)
  in
  let t0 = Unix.gettimeofday () in
  let outcome =
    match
      (match cancel with Some c -> Cancel.check c | None -> ());
      Pool.with_label
        (Printf.sprintf "stmt%d:%s" index (Ast.stmt_kind stmt))
        (fun () ->
          Trace.with_parent (Trace.span_id sp) (fun () ->
              exec_stmt ~loader db stmt))
    with
    | o -> o
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        (try outcome_of_exn e
         with e -> Printexc.raise_with_backtrace e bt)
  in
  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Trace.end_span sp;
  let ledger =
    Option.map
      (fun s -> Ledger.finish ~rows_out:(rows_of_outcome outcome) s)
      ledger0
  in
  Metrics.incr m_stmts;
  (match outcome with O_failed _ -> Metrics.incr m_failed | _ -> ());
  Metrics.observe ~exemplar:trace h_stmt_us (ms *. 1000.);
  let class_ = stmt_class stmt in
  Metrics.observe ~exemplar:trace (class_hist class_) (ms *. 1000.);
  Slo.note ~class_ ms;
  (match slow_threshold with
  | Some th when ms >= th ->
      Slow_log.note
        ?user:(Query_log.current_user ())
        ~trace ?ledger
        ~stmt:(Graql_lang.Pretty.stmt_to_string stmt)
        ~ms
        ~spans:(span_summary (Trace.span_id sp))
        ()
  | Some _ | None -> ());
  if query_log then begin
    (* Dispatch retries for this very statement happen before its body
       starts, outside the counter bracket — ask the pool for them. *)
    let retries =
      Metrics.counter_value c_fault_retries
      + Metrics.counter_value c_sched_retries
      - retries0
      + Pool.current_task_retries ()
    and failovers = Metrics.counter_value c_fault_failovers - failovers0 in
    let q_outcome, error =
      match outcome with
      | O_failed (Graql_error.Timeout _ as e) ->
          (Query_log.Timeout, Some (Graql_error.to_string e))
      | O_failed e -> (Query_log.Failed, Some (Graql_error.to_string e))
      | _ when retries > 0 || failovers > 0 -> (Query_log.Degraded, None)
      | _ -> (Query_log.Ok, None)
    in
    Query_log.log
      {
        Query_log.r_id = Query_log.next_id ();
        r_ts = t0;
        r_user = Query_log.current_user ();
        r_trace = trace;
        r_kind = Ast.stmt_kind stmt;
        r_ms = ms;
        r_rows = rows_of_outcome outcome;
        r_outcome = q_outcome;
        r_retries = max 0 retries;
        r_failovers = max 0 failovers;
        r_error = error;
        r_ledger = ledger;
      }
  end;
  outcome

let exec_script ?(loader = default_loader) ?parallel ?cancel db script =
  let stmts = Array.of_list script in
  let n = Array.length stmts in
  let parallel =
    match parallel with Some p -> p | None -> Db.pool db <> None
  in
  let outcomes = Array.make n None in
  (match Db.pool db with
  | Some pool -> Pool.set_cancel pool cancel
  | None -> ());
  Fun.protect
    ~finally:(fun () ->
      match Db.pool db with
      | Some pool -> Pool.set_cancel pool None
      | None -> ())
    (fun () ->
      if (not parallel) || n <= 1 || Db.pool db = None then
        Array.iteri
          (fun i stmt ->
            outcomes.(i) <-
              Some (exec_stmt_outcome ~loader ?cancel db ~index:i stmt))
          stmts
      else begin
        let pool = Option.get (Db.pool db) in
        let edges = dependence_edges script in
        let preds = Array.make n [] in
        List.iter (fun (i, j) -> preds.(j) <- i :: preds.(j)) edges;
        let done_ = Array.make n false in
        let remaining = ref (List.init n Fun.id) in
        while !remaining <> [] do
          let ready, blocked =
            List.partition
              (fun j -> List.for_all (fun i -> done_.(i)) preds.(j))
              !remaining
          in
          if ready = [] then
            failwith "Script_exec: dependence cycle (impossible for i<j edges)";
          (* Wave: run all ready statements concurrently. A statement that
             fails records its typed outcome; its dependents still run (and
             report their own errors if the failure starved them). The pool
             itself can refuse a statement task — ambient cancellation, or
             a dispatch-level injected fault that exhausts its retries —
             in which case the affected statements get the typed error. *)
          (try
             Trace.with_span ~cat:"script"
               ~args:[ ("ready", string_of_int (List.length ready)) ]
               "wave"
               (fun () ->
                 Pool.run_tasks pool
                   (List.map
                      (fun j () ->
                        outcomes.(j) <-
                          Some
                            (exec_stmt_outcome ~loader ?cancel db ~index:j
                               stmts.(j)))
                      ready))
           with e -> (
             match Graql_error.of_exn e with
             | None -> raise e
             | Some err ->
                 List.iter
                   (fun j ->
                     if outcomes.(j) = None then
                       outcomes.(j) <- Some (O_failed err))
                   ready));
          List.iter (fun j -> done_.(j) <- true) ready;
          remaining := blocked
        done
      end);
  List.mapi
    (fun i stmt ->
      match outcomes.(i) with
      | Some o -> (stmt, o)
      | None -> (stmt, O_message "skipped"))
    (Array.to_list (Array.map Fun.id stmts))
