(** Statement and script execution, including multi-statement dependence
    scheduling (Sec. III-B1): independent statements run in parallel on
    the domain pool; statements ordered by def/use of named entities (and
    by graph (in)validation) run in sequence. *)

module Ast = Graql_lang.Ast
module Table = Graql_storage.Table

type outcome =
  | O_table of Table.t
  | O_subgraph of Graql_graph.Subgraph.t
  | O_message of string
  | O_failed of Graql_error.t
      (** the statement failed (typed); the rest of the script still ran *)

exception Script_error of Graql_lang.Loc.t * string

val exec_stmt : ?loader:(string -> string) -> Db.t -> Ast.stmt -> outcome
(** Execute one statement against the database. [loader] maps an ingest
    file name to CSV text (defaults to reading the file system). *)

val dependence_edges : Ast.script -> (int * int) list
(** [(i, j)] with [i < j]: statement [j] must wait for statement [i].
    Conservative def/use analysis over entity names, parameters, and the
    derived graph. *)

val exec_script :
  ?loader:(string -> string) ->
  ?parallel:bool ->
  ?cancel:Graql_parallel.Cancel.t ->
  Db.t ->
  Ast.script ->
  (Ast.stmt * outcome) list
(** Run a whole script. With [parallel] (default true when the db has a
    pool), independent statements execute concurrently in dependence-DAG
    waves; outcomes are reported in statement order regardless.

    A failing statement yields [O_failed] and the remaining statements
    still execute (dependents of the failure report their own errors).
    [cancel] is checked before each statement and, via the pool's ambient
    token, at every parallel chunk boundary inside operators; once it
    fires, in-flight statements surface [O_failed (Timeout _)] and the
    rest are not started. Only out-of-memory / stack-overflow conditions
    abort the whole script. *)
