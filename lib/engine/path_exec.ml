module Ast = Graql_lang.Ast
module Loc = Graql_lang.Loc
module Value = Graql_storage.Value
module Schema = Graql_storage.Schema
module Vset = Graql_graph.Vset
module Eset = Graql_graph.Eset
module Subgraph = Graql_graph.Subgraph
module Bitset = Graql_util.Bitset
module Pool = Graql_parallel.Domain_pool
module Metrics = Graql_obs.Metrics
module Trace = Graql_obs.Trace
module Profile = Graql_obs.Profile

type mode = Keep_all | Keep_minimal of string list

type slot = {
  s_kind : [ `V | `E ];
  s_label : string option;
  s_type_name : string option;
  s_step : int;
}

type component = { slots : slot array; rows : int array array }

type result = {
  comps : component list;
  universe : Pack.universe;
  regex_edges : int list;
}

exception Exec_error of Loc.t * string

let error loc fmt = Printf.ksprintf (fun msg -> raise (Exec_error (loc, msg))) fmt
let norm = String.lowercase_ascii

(* Regex segments default to the product-automaton engine ([Rpq]); the
   closure evaluator below is kept verbatim as the reference
   implementation and for A/B benchmarking. *)
let use_automaton = ref true

(* Experimental: determinize the NFA by subset construction. Only applies
   when the query does not capture traversed edges. *)
let rpq_determinize = ref false

(* ------------------------------------------------------------------ *)
(* Planned paths: the execution form after direction choice. Reversing a
   regex segment cannot be a pure AST rewrite — the vertex preceding the
   regex becomes a filter on the reversed evaluation's endpoints — so the
   planner emits these explicit steps, shared with EXPLAIN. *)

type xregex = {
  xr_body : (Ast.estep * Ast.vstep) list;
  xr_op : Ast.rx_op;
  xr_loc : Loc.t;
  xr_reversed : bool;
  xr_exit : Ast.vstep option;
      (* reversed only: the forward pre-regex vertex, applied to endpoints *)
}

type xstep = X_step of Ast.estep * Ast.vstep | X_regex of xregex

type path_plan = {
  px_head : Ast.vstep;
  px_steps : xstep list;
  px_reversed : bool;
}

(* ------------------------------------------------------------------ *)
(* Execution state for one path                                        *)

type env = (string, (int, unit) Hashtbl.t) Hashtbl.t
(* Label-value sets exported by earlier operands of an [and]. *)

type pstate = {
  db : Db.t;
  params : string -> Value.t option;
  u : Pack.universe;
  mode : mode;
  max_cells : int;
  edges_needed : bool;
      (* whether the query output can observe regex-traversed edges *)
  env : env;
  mutable slots : slot list;
  mutable rows : int array list;
  mutable vstep_count : int; (* vertex steps placed so far *)
  (* label name (normalized) -> element-wise? *)
  label_kinds : (string, bool) Hashtbl.t;
  regex_edges : (int, unit) Hashtbl.t;
  (* s_step assignment: maps execution vstep index to display order *)
  step_code_v : int -> int;
  step_code_e : int -> int; (* edge arriving at exec vstep k *)
}

let nslots st = List.length st.slots

(* The paper names "the possibility of obtaining large intermediate
   results" among the core challenges: rather than exhausting memory, the
   executor enforces a cell budget on the binding relation and fails with
   a diagnosable error. *)
let check_budget st loc =
  let width = max 1 (nslots st) in
  if List.length st.rows * width > st.max_cells then
    error loc
      "intermediate result exceeds the configured budget (%d cells); add \
       conditions or labels to make the query more selective"
      st.max_cells

let slot_of_label st name =
  let name = norm name in
  let rec go i = function
    | [] -> None
    | s :: rest ->
        if (match s.s_label with Some l -> norm l = name | None -> false) then
          Some (i, s.s_kind)
        else go (i + 1) rest
  in
  go 0 st.slots

let vertex_slot_of_label st name =
  match slot_of_label st name with Some (i, `V) -> Some i | _ -> None

let slot_lookup st : Step_cond.slot_lookup =
  { Step_cond.find_slot = (fun name -> slot_of_label st name) }

(* Keep policy: the current (last) slot always stays; labeled slots stay;
   in minimal mode everything else is projected away and rows deduped. *)
let retain st =
  match st.mode with
  | Keep_all -> ()
  | Keep_minimal keep ->
      let keep = List.map norm keep in
      let n = nslots st in
      let keep_flags =
        List.mapi
          (fun i s ->
            i = n - 1
            || Option.is_some s.s_label
            || (match s.s_type_name with
               | Some t -> List.mem (norm t) keep
               | None -> false))
          st.slots
      in
      if List.for_all Fun.id keep_flags then begin
        (* No projection; still dedupe for set semantics. *)
        st.rows <- List.sort_uniq compare st.rows
      end
      else begin
        let kept_idx =
          List.filteri (fun i _ -> List.nth keep_flags i) (List.init n Fun.id)
        in
        let kept_idx = Array.of_list kept_idx in
        st.slots <-
          List.filteri (fun i _ -> List.nth keep_flags i) st.slots;
        st.rows <-
          List.sort_uniq compare
            (List.map
               (fun row -> Array.map (fun i -> row.(i)) kept_idx)
               st.rows)
      end

let register_label st (v : Ast.vstep) =
  match v.Ast.v_label with
  | None -> ()
  | Some label ->
      let name = Ast.label_name label in
      Hashtbl.replace st.label_kinds (norm name)
        (match label with Ast.Each_label _ -> true | Ast.Set_label _ -> false)

let label_of_vstep (v : Ast.vstep) =
  Option.map Ast.label_name v.Ast.v_label

(* ------------------------------------------------------------------ *)
(* Head seeding                                                        *)

(* Detect [key = constant] to seed from the key index instead of a scan. *)
let key_seed st vset (cond : Ast.expr option) =
  match cond with
  | None -> None
  | Some cond ->
      let key_schema = Vset.key_schema vset in
      if Schema.arity key_schema <> 1 then None
      else begin
        let kname = norm (Schema.col_name key_schema 0) in
        let value_of = function
          | Ast.E_lit (l, _) -> Some (Compile_expr.value_of_lit l)
          | Ast.E_param (p, _) -> st.params p
          | _ -> None
        in
        let rec find = function
          | [] -> None
          | Ast.E_binop (Ast.Eq, Ast.E_attr (q, a, _), rhs, _) :: rest
            when norm a = kname
                 && (match q with
                    | None -> true
                    | Some q -> norm q = norm (Vset.name vset)) -> (
              match value_of rhs with Some v -> Some v | None -> find rest)
          | Ast.E_binop (Ast.Eq, lhs, Ast.E_attr (q, a, _), _) :: rest
            when norm a = kname
                 && (match q with
                    | None -> true
                    | Some q -> norm q = norm (Vset.name vset)) -> (
              match value_of lhs with Some v -> Some v | None -> find rest)
          | _ :: rest -> find rest
        in
        find (Compile_expr.conjuncts cond)
      end

let compile_vcond st vset cond ~self_names =
  Option.map
    (fun c ->
      try
        Step_cond.compile_vertex ~params:st.params ~universe:st.u
          ~slots:(slot_lookup st) ~self_names ~vset c
      with Compile_expr.Compile_error (loc, msg) -> error loc "%s" msg)
    cond

let seed_vertices_of_type st ~tidx ~(cond : Ast.expr option) ~self_names ~sub =
  let vset = st.u.Pack.vtypes.(tidx) in
  let compiled = compile_vcond st vset cond ~self_names in
  let accept v =
    (match sub with Some bits -> Bitset.mem bits v | None -> true)
    && (match compiled with
       | Some c -> Step_cond.eval_vertex c ~row:[||] ~vertex:v
       | None -> true)
  in
  match key_seed st vset cond with
  | Some key -> (
      match Vset.find_by_key vset [ key ] with
      | Some v when accept v -> [ Pack.pack ~tidx ~id:v ]
      | _ -> [])
  | None ->
      let out = ref [] in
      for v = Vset.size vset - 1 downto 0 do
        if accept v then out := Pack.pack ~tidx ~id:v :: !out
      done;
      !out

let head_seeds st (v : Ast.vstep) : int list * string option * string option =
  (* Returns seeds, the declared type name (if any), and the referenced
     cross-path label (if the head names one) — the slot must carry that
     label so [and] composition can join on it. *)
  match v.Ast.v_kind with
  | Ast.V_any ->
      if v.Ast.v_cond <> None then
        error v.Ast.v_loc "conditions are not allowed on [ ] steps";
      let out = ref [] in
      Array.iteri
        (fun tidx vset ->
          for id = Vset.size vset - 1 downto 0 do
            out := Pack.pack ~tidx ~id :: !out
          done)
        st.u.Pack.vtypes;
      (!out, None, None)
  | Ast.V_named n -> (
      match Hashtbl.find_opt st.env (norm n) with
      | Some set ->
          (* Cross-path label reference as head. *)
          let seeds = Hashtbl.fold (fun cell () acc -> cell :: acc) set [] in
          let seeds = List.sort compare seeds in
          let seeds =
            match v.Ast.v_cond with
            | None -> seeds
            | Some cond ->
                List.filter
                  (fun cell ->
                    let vset = Pack.vset_of st.u cell in
                    let c =
                      compile_vcond st vset (Some cond) ~self_names:[ n ]
                    in
                    match c with
                    | Some c ->
                        Step_cond.eval_vertex c ~row:[||] ~vertex:(Pack.id cell)
                    | None -> true)
                  seeds
          in
          (seeds, None, Some n)
      | None -> (
          match Pack.vtype_index st.u n with
          | Some tidx ->
              ( seed_vertices_of_type st ~tidx ~cond:v.Ast.v_cond
                  ~self_names:
                    (n :: (match label_of_vstep v with Some l -> [ l ] | None -> []))
                  ~sub:None,
                Some n,
                None )
          | None -> error v.Ast.v_loc "no such vertex type or label %S" n))
  | Ast.V_seeded (sg, vt) -> (
      match Db.find_subgraph st.db sg with
      | None -> error v.Ast.v_loc "no such subgraph %S" sg
      | Some sub -> (
          match Pack.vtype_index st.u vt with
          | None -> error v.Ast.v_loc "no such vertex type %S" vt
          | Some tidx ->
              let bits = Subgraph.vertices sub ~vtype:vt in
              let seeds =
                match bits with
                | None -> []
                | Some bits ->
                    seed_vertices_of_type st ~tidx ~cond:v.Ast.v_cond
                      ~self_names:[ vt ] ~sub:(Some bits)
              in
              (seeds, Some vt, None)))

(* ------------------------------------------------------------------ *)
(* Step expansion                                                      *)

type target =
  | T_type of int option  (** required vertex type index; None = any *)
  | T_label_each of int  (** slot position *)
  | T_label_set of int * (int, unit) Hashtbl.t
      (** label slot position and its current value set; the landing vertex
          must be in the set *and* share the row's bound type — a label on a
          type-matching step binds its type at matching time (Sec. II-B4) *)
  | T_env of (int, unit) Hashtbl.t
  | T_seeded of int * Bitset.t

(* Traversals applicable from a given left vertex type: which edge set,
   which CSR direction, and the type of the landing vertex. *)
type traversal = { tr_eidx : int; tr_out : bool; tr_other : int }

let traversals_for st (e : Ast.estep) ~ltidx ~(required_other : int option) =
  let lname = norm (Vset.name st.u.Pack.vtypes.(ltidx)) in
  let consider eidx eset acc =
    let src = norm (Eset.src_type eset) and dst = norm (Eset.dst_type eset) in
    let name_ok =
      match e.Ast.e_kind with
      | Ast.E_named n -> norm n = norm (Eset.name eset)
      | Ast.E_any -> true
    in
    if not name_ok then acc
    else
      match e.Ast.e_dir with
      | Ast.Out ->
          if src = lname then
            let other = Pack.vtype_index st.u (Eset.dst_type eset) in
            match other with
            | Some o
              when (match required_other with Some r -> r = o | None -> true) ->
                { tr_eidx = eidx; tr_out = true; tr_other = o } :: acc
            | _ -> acc
          else acc
      | Ast.In ->
          if dst = lname then
            let other = Pack.vtype_index st.u (Eset.src_type eset) in
            match other with
            | Some o
              when (match required_other with Some r -> r = o | None -> true) ->
                { tr_eidx = eidx; tr_out = false; tr_other = o } :: acc
            | _ -> acc
          else acc
  in
  let acc = ref [] in
  Array.iteri (fun eidx eset -> acc := consider eidx eset !acc) st.u.Pack.etypes;
  List.rev !acc

let distinct_types_in_rows rows pos =
  let seen = Hashtbl.create 8 in
  List.iter (fun row -> Hashtbl.replace seen (Pack.tidx row.(pos)) ()) rows;
  Hashtbl.fold (fun t () acc -> t :: acc) seen []

let expand_step st (e : Ast.estep) (v : Ast.vstep) =
  let cur_pos = nslots st - 1 in
  (* Resolve the landing-step target. *)
  let target, declared_type, ref_label =
    match v.Ast.v_kind with
    | Ast.V_any ->
        if v.Ast.v_cond <> None then
          error v.Ast.v_loc "conditions are not allowed on [ ] steps";
        (T_type None, None, None)
    | Ast.V_named n -> (
        match vertex_slot_of_label st n with
        | Some pos ->
            let each =
              match Hashtbl.find_opt st.label_kinds (norm n) with
              | Some e -> e
              | None -> false
            in
            if each then (T_label_each pos, None, None)
            else begin
              let set = Hashtbl.create 64 in
              List.iter (fun row -> Hashtbl.replace set row.(pos) ()) st.rows;
              (T_label_set (pos, set), None, None)
            end
        | None -> (
            match Hashtbl.find_opt st.env (norm n) with
            | Some set -> (T_env set, None, Some n)
            | None -> (
                match Pack.vtype_index st.u n with
                | Some tidx -> (T_type (Some tidx), Some n, None)
                | None -> error v.Ast.v_loc "no such vertex type or label %S" n)))
    | Ast.V_seeded (sg, vt) -> (
        match (Db.find_subgraph st.db sg, Pack.vtype_index st.u vt) with
        | Some sub, Some tidx -> (
            match Subgraph.vertices sub ~vtype:vt with
            | Some bits -> (T_seeded (tidx, bits), Some vt, None)
            | None -> (T_seeded (tidx, Bitset.create 0), Some vt, None))
        | None, _ -> error v.Ast.v_loc "no such subgraph %S" sg
        | _, None -> error v.Ast.v_loc "no such vertex type %S" vt)
  in
  let required_other =
    match target with
    | T_type req -> req
    | T_seeded (tidx, _) -> Some tidx
    | T_label_each _ | T_label_set _ | T_env _ -> None
  in
  (* Pre-compute traversals and compiled conditions for every left type in
     the frontier, so the per-row loop is read-only (parallel-safe). *)
  let ltypes = distinct_types_in_rows st.rows cur_pos in
  let trav_cache = Hashtbl.create 8 in
  List.iter
    (fun ltidx ->
      Hashtbl.replace trav_cache ltidx
        (traversals_for st e ~ltidx ~required_other))
    ltypes;
  let econd_cache = Hashtbl.create 8 in
  let vcond_cache = Hashtbl.create 8 in
  let self_names =
    (match declared_type with Some n -> [ n ] | None -> [])
    @ (match label_of_vstep v with Some l -> [ l ] | None -> [])
    @ (match v.Ast.v_kind with Ast.V_named n -> [ n ] | _ -> [])
  in
  let arriving_edge_label = Option.map Ast.label_name e.Ast.e_label in
  let vcond_slots =
    let base = slot_lookup st in
    let width = nslots st in
    {
      Step_cond.find_slot =
        (fun name ->
          match base.Step_cond.find_slot name with
          | Some _ as hit -> hit
          | None -> (
              match arriving_edge_label with
              | Some l when norm l = name -> Some (width, `E)
              | _ -> None));
    }
  in
  List.iter
    (fun ltidx ->
      List.iter
        (fun tr ->
          (match (e.Ast.e_cond, Hashtbl.mem econd_cache tr.tr_eidx) with
          | Some c, false ->
              let eset = st.u.Pack.etypes.(tr.tr_eidx) in
              let compiled =
                try
                  Step_cond.compile_edge ~params:st.params ~universe:st.u
                    ~slots:(slot_lookup st)
                    ~self_names:
                      ((match e.Ast.e_kind with
                       | Ast.E_named n -> [ n ]
                       | Ast.E_any -> [])
                      @
                      match e.Ast.e_label with
                      | Some l -> [ Ast.label_name l ]
                      | None -> [])
                    ~eset c
                with Compile_expr.Compile_error (loc, msg) -> error loc "%s" msg
              in
              Hashtbl.replace econd_cache tr.tr_eidx compiled
          | _ -> ());
          match (v.Ast.v_cond, Hashtbl.mem vcond_cache tr.tr_other) with
          | Some c, false ->
              let vset = st.u.Pack.vtypes.(tr.tr_other) in
              let compiled =
                try
                  Step_cond.compile_vertex ~params:st.params ~universe:st.u
                    ~slots:vcond_slots ~self_names ~vset c
                with Compile_expr.Compile_error (loc, msg) -> error loc "%s" msg
              in
              Hashtbl.replace vcond_cache tr.tr_other compiled
          | _ -> ())
        (Hashtbl.find trav_cache ltidx))
    ltypes;
  let expand_row row out =
    let cur = row.(cur_pos) in
    let travs =
      match Hashtbl.find_opt trav_cache (Pack.tidx cur) with
      | Some t -> t
      | None -> []
    in
    List.iter
      (fun tr ->
        let eset = st.u.Pack.etypes.(tr.tr_eidx) in
        let csr = if tr.tr_out then Eset.forward eset else Eset.reverse eset in
        Graql_graph.Csr.iter_neighbors csr (Pack.id cur) (fun ~dst:nbr ~eid ->
            let edge_ok =
              match Hashtbl.find_opt econd_cache tr.tr_eidx with
              | Some c -> Step_cond.eval_edge c ~row ~edge:eid
              | None -> true
            in
            if edge_ok then begin
              let ncell = Pack.pack ~tidx:tr.tr_other ~id:nbr in
              let target_ok =
                match target with
                | T_type _ -> true (* filtered via required_other *)
                | T_label_each pos -> ncell = row.(pos)
                | T_label_set (pos, set) ->
                    Hashtbl.mem set ncell
                    && Pack.tidx ncell = Pack.tidx row.(pos)
                | T_env set -> Hashtbl.mem set ncell
                | T_seeded (_, bits) -> Bitset.mem bits nbr
              in
              if target_ok then begin
                let n = Array.length row in
                let row' = Array.make (n + 2) 0 in
                Array.blit row 0 row' 0 n;
                row'.(n) <- Pack.pack ~tidx:tr.tr_eidx ~id:eid;
                row'.(n + 1) <- ncell;
                let vertex_ok =
                  match Hashtbl.find_opt vcond_cache tr.tr_other with
                  | Some c -> Step_cond.eval_vertex c ~row:row' ~vertex:nbr
                  | None -> true
                in
                if vertex_ok then out := row' :: !out
              end
            end))
      travs
  in
  let rows = Array.of_list st.rows in
  let nrows = Array.length rows in
  let pool = Db.pool st.db in
  let new_rows =
    match pool with
    | Some pool when nrows >= 2048 ->
        let acc =
          Pool.parallel_reduce pool
            ~init:(fun () -> ref [])
            ~body:(fun out i -> expand_row rows.(i) out)
            ~merge:(fun a b ->
              a := List.rev_append (List.rev !b) !a;
              a)
            ~lo:0 ~hi:nrows
        in
        List.rev !acc
    | _ ->
        let out = ref [] in
        Array.iter (fun row -> expand_row row out) rows;
        List.rev !out
  in
  let k = st.vstep_count in
  let eslot =
    {
      s_kind = `E;
      s_label = Option.map Ast.label_name e.Ast.e_label;
      s_type_name =
        (match e.Ast.e_kind with Ast.E_named n -> Some n | Ast.E_any -> None);
      s_step = st.step_code_e k;
    }
  in
  let vslot =
    {
      s_kind = `V;
      s_label =
        (match label_of_vstep v with Some l -> Some l | None -> ref_label);
      s_type_name = declared_type;
      s_step = st.step_code_v k;
    }
  in
  st.slots <- st.slots @ [ eslot; vslot ];
  st.rows <- new_rows;
  st.vstep_count <- k + 1;
  register_label st v;
  check_budget st v.Ast.v_loc;
  retain st

(* ------------------------------------------------------------------ *)
(* Regex segments                                                      *)

(* One traversal of the group body from a single cell. Returns the cells
   reached and the packed edges used. Conditions inside the body may only
   reference the step's own attributes. *)
let regex_round st (body : (Ast.estep * Ast.vstep) list) =
  let no_slots : Step_cond.slot_lookup = { Step_cond.find_slot = (fun _ -> None) } in
  let vcond_cache : (int * int, Step_cond.t option) Hashtbl.t = Hashtbl.create 8 in
  let econd_cache : (int * int, Step_cond.t option) Hashtbl.t = Hashtbl.create 8 in
  let step_one bi ((e : Ast.estep), (v : Ast.vstep)) cells =
    if v.Ast.v_label <> None then
      error v.Ast.v_loc "labels are not supported inside path regexes";
    if e.Ast.e_label <> None then
      error e.Ast.e_loc "labels are not supported inside path regexes";
    let required_other =
      match v.Ast.v_kind with
      | Ast.V_named n -> (
          match Pack.vtype_index st.u n with
          | Some t -> Some t
          | None -> error v.Ast.v_loc "no such vertex type %S" n)
      | Ast.V_any -> None
      | Ast.V_seeded _ ->
          error v.Ast.v_loc "subgraph seeds are not allowed inside regexes"
    in
    let out = ref [] in
    List.iter
      (fun (cell, edges) ->
        let travs =
          traversals_for st e ~ltidx:(Pack.tidx cell) ~required_other
        in
        List.iter
          (fun tr ->
            let eset = st.u.Pack.etypes.(tr.tr_eidx) in
            let econd =
              match e.Ast.e_cond with
              | None -> None
              | Some c -> (
                  match Hashtbl.find_opt econd_cache (bi, tr.tr_eidx) with
                  | Some cached -> cached
                  | None ->
                      let compiled =
                        try
                          Some
                            (Step_cond.compile_edge ~params:st.params
                               ~universe:st.u ~slots:no_slots
                               ~self_names:
                                 (match e.Ast.e_kind with
                                 | Ast.E_named n -> [ n ]
                                 | Ast.E_any -> [])
                               ~eset c)
                        with Compile_expr.Compile_error (loc, msg) ->
                          error loc "%s" msg
                      in
                      Hashtbl.replace econd_cache (bi, tr.tr_eidx) compiled;
                      compiled)
            in
            let vcond =
              match v.Ast.v_cond with
              | None -> None
              | Some c -> (
                  match Hashtbl.find_opt vcond_cache (bi, tr.tr_other) with
                  | Some cached -> cached
                  | None ->
                      let vset = st.u.Pack.vtypes.(tr.tr_other) in
                      let compiled =
                        try
                          Some
                            (Step_cond.compile_vertex ~params:st.params
                               ~universe:st.u ~slots:no_slots
                               ~self_names:
                                 (match v.Ast.v_kind with
                                 | Ast.V_named n -> [ n ]
                                 | _ -> [])
                               ~vset c)
                        with Compile_expr.Compile_error (loc, msg) ->
                          error loc "%s" msg
                      in
                      Hashtbl.replace vcond_cache (bi, tr.tr_other) compiled;
                      compiled)
            in
            let csr = if tr.tr_out then Eset.forward eset else Eset.reverse eset in
            Graql_graph.Csr.iter_neighbors csr (Pack.id cell)
              (fun ~dst:nbr ~eid ->
                let eok =
                  match econd with
                  | Some c -> Step_cond.eval_edge c ~row:[||] ~edge:eid
                  | None -> true
                in
                if eok then begin
                  let vok =
                    match vcond with
                    | Some c -> Step_cond.eval_vertex c ~row:[||] ~vertex:nbr
                    | None -> true
                  in
                  if vok then
                    out :=
                      ( Pack.pack ~tidx:tr.tr_other ~id:nbr,
                        Pack.pack ~tidx:tr.tr_eidx ~id:eid :: edges )
                      :: !out
                end))
          travs)
      cells;
    !out
  in
  fun start ->
    let cells = ref [ (start, []) ] in
    List.iteri (fun bi pair -> cells := step_one bi pair !cells) body;
    !cells

let expand_regex st (body : (Ast.estep * Ast.vstep) list) (op : Ast.rx_op) loc =
  let round = regex_round st body in
  let memo : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let note_edges edges = List.iter (fun e -> Hashtbl.replace st.regex_edges e ()) edges in
  let closure ~include_start start =
    match Hashtbl.find_opt memo ((if include_start then 1 else 0) + (start * 2)) with
    | Some cached -> cached
    | None ->
        let visited = Hashtbl.create 32 in
        if include_start then Hashtbl.replace visited start ();
        let frontier = ref [ start ] in
        let first = ref true in
        while !frontier <> [] do
          let next = ref [] in
          List.iter
            (fun cell ->
              List.iter
                (fun (endpoint, edges) ->
                  note_edges edges;
                  if not (Hashtbl.mem visited endpoint) then begin
                    Hashtbl.replace visited endpoint ();
                    next := endpoint :: !next
                  end)
                (round cell))
            !frontier;
          ignore !first;
          first := false;
          frontier := !next
        done;
        let endpoints = Hashtbl.fold (fun c () acc -> c :: acc) visited [] in
        let endpoints = List.sort compare endpoints in
        Hashtbl.replace memo ((if include_start then 1 else 0) + (start * 2)) endpoints;
        endpoints
  in
  let exact_n n start =
    match Hashtbl.find_opt memo ((start * 2) + 4 + n) with
    | Some cached -> cached
    | None ->
        (* Level BFS: levels.(k) = cells at exactly k rounds; edge lists
           per level, pruned backward so only edges on full-length paths
           are reported. *)
        let levels = Array.make (n + 1) [] in
        let level_edges = Array.make (max n 1) [] in
        levels.(0) <- [ start ];
        for k = 0 to n - 1 do
          let seen = Hashtbl.create 32 in
          let next = ref [] in
          List.iter
            (fun cell ->
              List.iter
                (fun (endpoint, edges) ->
                  level_edges.(k) <- (cell, endpoint, edges) :: level_edges.(k);
                  if not (Hashtbl.mem seen endpoint) then begin
                    Hashtbl.replace seen endpoint ();
                    next := endpoint :: !next
                  end)
                (round cell))
            levels.(k);
          levels.(k + 1) <- !next
        done;
        (* Backward prune: an edge at level k survives if its endpoint is
           kept at level k+1. *)
        let kept = Array.make (n + 1) (Hashtbl.create 1) in
        let tail = Hashtbl.create 32 in
        List.iter (fun c -> Hashtbl.replace tail c ()) levels.(n);
        kept.(n) <- tail;
        for k = n - 1 downto 0 do
          let keep_k = Hashtbl.create 32 in
          List.iter
            (fun (from, endpoint, edges) ->
              if Hashtbl.mem kept.(k + 1) endpoint then begin
                Hashtbl.replace keep_k from ();
                note_edges edges
              end)
            level_edges.(k);
          kept.(k) <- keep_k
        done;
        let endpoints = List.sort_uniq compare levels.(n) in
        Hashtbl.replace memo ((start * 2) + 4 + n) endpoints;
        endpoints
  in
  let reach start =
    match op with
    | Ast.Rx_star -> closure ~include_start:true start
    | Ast.Rx_plus ->
        (* At least one round: expand once, then the star closure of each
           result (a reached vertex may loop further). *)
        let after_one = round start in
        let acc = Hashtbl.create 32 in
        List.iter
          (fun (endpoint, edges) ->
            note_edges edges;
            List.iter
              (fun c -> Hashtbl.replace acc c ())
              (closure ~include_start:true endpoint))
          after_one;
        List.sort compare (Hashtbl.fold (fun c () l -> c :: l) acc [])
    | Ast.Rx_count n ->
        if n < 0 then error loc "negative repetition count"
        else exact_n n start
  in
  let new_rows = ref [] in
  List.iter
    (fun row ->
      let cur = row.(Array.length row - 1) in
      List.iter
        (fun endpoint ->
          let n = Array.length row in
          let row' = Array.make (n + 1) 0 in
          Array.blit row 0 row' 0 n;
          row'.(n) <- endpoint;
          new_rows := row' :: !new_rows)
        (reach cur))
    st.rows;
  let k = st.vstep_count in
  st.slots <-
    st.slots
    @ [ { s_kind = `V; s_label = None; s_type_name = None; s_step = st.step_code_v k } ];
  st.rows <- List.rev !new_rows;
  st.vstep_count <- k + 1;
  check_budget st loc;
  retain st

(* The automaton route: compile the group body once, then run product BFS
   per distinct frontier cell (memoized like the closure route). Endpoint
   sets, row order and noted edges are byte-identical to [expand_regex]. *)
let expand_regex_nfa st (xr : xregex) =
  let a =
    try
      Rpq.compile ~params:st.params ~u:st.u ~reversed:xr.xr_reversed
        ?exit_vstep:xr.xr_exit ~body:xr.xr_body ~op:xr.xr_op ~loc:xr.xr_loc ()
    with Rpq.Rpq_error (loc, msg) -> error loc "%s" msg
  in
  let a =
    if !rpq_determinize && (not xr.xr_reversed) && not st.edges_needed then
      Rpq.determinize a
    else a
  in
  let nst = Rpq.nstates a in
  let stats = Array.make nst 0 in
  let note =
    if st.edges_needed && not xr.xr_reversed then
      Some (fun e -> Hashtbl.replace st.regex_edges e ())
    else None
  in
  let pool = Db.pool st.db in
  let memo : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let reach start =
    match Hashtbl.find_opt memo start with
    | Some cached -> cached
    | None ->
        let r = Rpq.eval a ?pool ~stats ?note ~start () in
        Hashtbl.replace memo start r;
        r
  in
  let sp =
    Trace.begin_span ~cat:"rpq"
      ~args:
        [
          ("states", string_of_int nst);
          ("reversed", string_of_bool xr.xr_reversed);
        ]
      "rpq.eval"
  in
  let new_rows = ref [] in
  List.iter
    (fun row ->
      let cur = row.(Array.length row - 1) in
      List.iter
        (fun endpoint ->
          let n = Array.length row in
          let row' = Array.make (n + 1) 0 in
          Array.blit row 0 row' 0 n;
          row'.(n) <- endpoint;
          new_rows := row' :: !new_rows)
        (reach cur))
    st.rows;
  Trace.end_span sp;
  (* Per-state visited sizes become profile rows, in the same order as
     EXPLAIN's per-state plan rows (the segment summary row follows from
     the caller's step timer). *)
  (match Profile.current () with
  | Some c ->
      let infos = Rpq.states a in
      Array.iteri
        (fun s rows ->
          Profile.note_step c ~label:infos.(s).Rpq.si_label ~rows ~ms:0.)
        stats
  | None -> ());
  let k = st.vstep_count in
  st.slots <-
    st.slots
    @ [ { s_kind = `V; s_label = None; s_type_name = None; s_step = st.step_code_v k } ];
  st.rows <- List.rev !new_rows;
  st.vstep_count <- k + 1;
  check_budget st xr.xr_loc;
  retain st

(* ------------------------------------------------------------------ *)
(* Planner: direction choice (Sec. III-B)                              *)

let vstep_count_of_path (p : Ast.path) =
  1
  + List.fold_left
      (fun acc -> function
        | Ast.Seg_step _ -> acc + 1
        | Ast.Seg_regex _ -> acc + 1)
      0 p.Ast.segments

let rec path_has_labels (p : Ast.path) =
  let vstep_labelled (v : Ast.vstep) = v.Ast.v_label <> None in
  vstep_labelled p.Ast.head
  || List.exists
       (function
         | Ast.Seg_step (_, v) -> vstep_labelled v
         | Ast.Seg_regex (body, _, _) -> List.exists (fun (_, v) -> vstep_labelled v) body)
       p.Ast.segments
  || path_references_names p

(* Conservative: any V_named that is not a known vertex type might be a
   label reference; treated during planning only. *)
and path_references_names _ = false

let path_has_regex (p : Ast.path) =
  List.exists
    (function Ast.Seg_regex _ -> true | Ast.Seg_step _ -> false)
    p.Ast.segments

let last_vstep (p : Ast.path) =
  match List.rev p.Ast.segments with
  | [] -> p.Ast.head
  | Ast.Seg_step (_, v) :: _ -> v
  | Ast.Seg_regex (body, _, _) :: _ -> (
      match List.rev body with
      | (_, v) :: _ -> v
      | [] -> p.Ast.head)

let estimate_seed ~db ~params u (v : Ast.vstep) =
  match v.Ast.v_kind with
  | Ast.V_any ->
      Array.fold_left (fun acc vs -> acc + Vset.size vs) 0 u.Pack.vtypes
  | Ast.V_seeded (sg, vt) -> (
      match Db.find_subgraph db sg with
      | Some sub -> (
          match Subgraph.vertices sub ~vtype:vt with
          | Some bits -> Bitset.cardinal bits
          | None -> 0)
      | None -> 0)
  | Ast.V_named n -> (
      match Pack.vtype_index u n with
      | None -> max_int (* label or unknown: avoid reversal *)
      | Some tidx -> (
          let size = Vset.size u.Pack.vtypes.(tidx) in
          match v.Ast.v_cond with
          | None -> size
          | Some cond ->
              let key_schema = Vset.key_schema u.Pack.vtypes.(tidx) in
              let kname =
                if Schema.arity key_schema = 1 then
                  Some (norm (Schema.col_name key_schema 0))
                else None
              in
              let is_key_eq =
                List.exists
                  (function
                    | Ast.E_binop (Ast.Eq, Ast.E_attr (_, a, _), (Ast.E_lit _ | Ast.E_param _), _)
                    | Ast.E_binop (Ast.Eq, (Ast.E_lit _ | Ast.E_param _), Ast.E_attr (_, a, _), _)
                      -> (
                        match kname with Some k -> norm a = k | None -> false)
                    | _ -> false)
                  (Compile_expr.conjuncts cond)
              in
              ignore params;
              if is_key_eq then 1 else max 1 (size / 10)))

let reverse_path (p : Ast.path) : Ast.path =
  (* Only called on regex-free paths. *)
  let flip (e : Ast.estep) =
    { e with Ast.e_dir = (match e.Ast.e_dir with Ast.Out -> Ast.In | Ast.In -> Ast.Out) }
  in
  let steps =
    List.map
      (function
        | Ast.Seg_step (e, v) -> (e, v)
        | Ast.Seg_regex _ -> assert false)
      p.Ast.segments
  in
  (* vertices: v0 e1 v1 e2 v2 ... en vn  =>  vn en' v(n-1) ... e1' v0 *)
  let vertices = p.Ast.head :: List.map snd steps in
  let edges = List.map fst steps in
  let rev_vertices = List.rev vertices in
  let rev_edges = List.rev_map flip edges in
  match rev_vertices with
  | [] -> p
  | head :: rest ->
      let segments =
        List.map2 (fun e v -> Ast.Seg_step (e, v)) rev_edges rest
      in
      { Ast.head; segments }

(* A regex path can only run tail-first when (a) the reversed automaton's
   endpoint filters are expressible — the vertex before each regex is
   [ ] or a known vertex type — and (b) the path actually ends in a
   concrete step to seed from. *)
let regex_reversible ~u (p : Ast.path) =
  let ok_prev = function
    | None -> true (* anonymous regex endpoint *)
    | Some (v : Ast.vstep) -> (
        match v.Ast.v_kind with
        | Ast.V_any -> v.Ast.v_cond = None
        | Ast.V_named n -> Pack.vtype_index u n <> None
        | Ast.V_seeded _ -> false)
  in
  (match List.rev p.Ast.segments with
  | Ast.Seg_step _ :: _ -> true
  | _ -> false)
  &&
  let prev = ref (Some p.Ast.head) in
  List.for_all
    (fun seg ->
      let ok =
        match seg with Ast.Seg_regex _ -> ok_prev !prev | Ast.Seg_step _ -> true
      in
      (prev :=
         match seg with
         | Ast.Seg_step (_, v) -> Some v
         | Ast.Seg_regex _ -> None);
      ok)
    p.Ast.segments

let chosen_direction ?(edges_needed = true) (p : Ast.path) ~db ~params =
  let u = Pack.universe (Db.graph db) in
  let regex_ok =
    (not (path_has_regex p))
    || (!use_automaton && (not edges_needed) && regex_reversible ~u p)
  in
  if path_has_labels p || not regex_ok then `Forward
  else
    let head_est = estimate_seed ~db ~params u p.Ast.head in
    let tail_est = estimate_seed ~db ~params u (last_vstep p) in
    if tail_est < head_est then `Backward else `Forward

let plan_path ~db ~params ?(auto_reverse = true) ?(edges_needed = true)
    (p : Ast.path) : path_plan =
  let reversed =
    auto_reverse && chosen_direction ~edges_needed p ~db ~params = `Backward
  in
  if not reversed then
    {
      px_head = p.Ast.head;
      px_steps =
        List.map
          (function
            | Ast.Seg_step (e, v) -> X_step (e, v)
            | Ast.Seg_regex (body, op, loc) ->
                X_regex
                  {
                    xr_body = body;
                    xr_op = op;
                    xr_loc = loc;
                    xr_reversed = false;
                    xr_exit = None;
                  })
          p.Ast.segments;
      px_reversed = false;
    }
  else if not (path_has_regex p) then
    let q = reverse_path p in
    {
      px_head = q.Ast.head;
      px_steps =
        List.map
          (function
            | Ast.Seg_step (e, v) -> X_step (e, v)
            | Ast.Seg_regex _ -> assert false)
          q.Ast.segments;
      px_reversed = true;
    }
  else begin
    let flip (e : Ast.estep) =
      {
        e with
        Ast.e_dir =
          (match e.Ast.e_dir with Ast.Out -> Ast.In | Ast.In -> Ast.Out);
      }
    in
    let segs = Array.of_list p.Ast.segments in
    let n = Array.length segs in
    (* landing i = the vertex after segment i; None = anonymous regex
       endpoint. landing (-1) = the head. *)
    let landing i =
      if i < 0 then Some p.Ast.head
      else
        match segs.(i) with
        | Ast.Seg_step (_, v) -> Some v
        | Ast.Seg_regex _ -> None
    in
    let any_at loc =
      { Ast.v_kind = Ast.V_any; v_label = None; v_cond = None; v_loc = loc }
    in
    let head =
      match landing (n - 1) with
      | Some v -> v
      | None -> assert false (* guarded by regex_reversible *)
    in
    let steps = ref [] in
    for i = 0 to n - 1 do
      let xs =
        match segs.(i) with
        | Ast.Seg_step (e, _) ->
            let dst =
              match landing (i - 1) with
              | Some v -> v
              | None -> any_at e.Ast.e_loc
            in
            X_step (flip e, dst)
        | Ast.Seg_regex (body, op, loc) ->
            X_regex
              {
                xr_body = body;
                xr_op = op;
                xr_loc = loc;
                xr_reversed = true;
                xr_exit = landing (i - 1);
              }
      in
      steps := xs :: !steps
    done;
    { px_head = head; px_steps = !steps; px_reversed = true }
  end

(* ------------------------------------------------------------------ *)
(* Path / multipath orchestration                                      *)

let default_max_cells = 50_000_000

(* [path.*] counters count frontier rows and steps, which are fixed by
   the query and data — invariant across domain counts. *)
let m_steps = Metrics.counter "path.steps"
let m_seed_rows = Metrics.counter "path.seed_rows"
let m_step_rows = Metrics.counter "path.step_rows"
let h_step_us = Metrics.histogram "path.step_us"

let vstep_name (v : Ast.vstep) =
  match v.Ast.v_kind with
  | Ast.V_named n -> n
  | Ast.V_any -> "[ ]"
  | Ast.V_seeded (sg, vt) -> Printf.sprintf "%s<%s>" vt sg

let seg_label = function
  | Ast.Seg_step (e, v) ->
      let ename =
        match e.Ast.e_kind with Ast.E_named n -> n | Ast.E_any -> ""
      in
      let arrow =
        match e.Ast.e_dir with
        | Ast.Out -> Printf.sprintf "--%s-->" ename
        | Ast.In -> Printf.sprintf "<--%s--" ename
      in
      arrow ^ " " ^ vstep_name v
  | Ast.Seg_regex (_, op, _) ->
      "( regex )"
      ^ (match op with
        | Ast.Rx_star -> "*"
        | Ast.Rx_plus -> "+"
        | Ast.Rx_count n -> Printf.sprintf "{%d}" n)

let xstep_label = function
  | X_step (e, v) -> seg_label (Ast.Seg_step (e, v))
  | X_regex xr -> seg_label (Ast.Seg_regex (xr.xr_body, xr.xr_op, xr.xr_loc))

let run_path ~db ~params ~u ~mode ~max_cells ~env ~regex_edges ~auto_reverse
    ~edges_needed (p : Ast.path) : component * (string, bool) Hashtbl.t =
  let n = vstep_count_of_path p - 1 in
  let plan = plan_path ~db ~params ~auto_reverse ~edges_needed p in
  let reversed = plan.px_reversed in
  let step_code_v k = if reversed then 2 * (n - k) else 2 * k in
  let step_code_e k = if reversed then (2 * (n - k)) + 1 else (2 * k) - 1 in
  let st =
    {
      db;
      params;
      u;
      mode;
      max_cells;
      edges_needed;
      env;
      slots = [];
      rows = [];
      vstep_count = 0;
      label_kinds = Hashtbl.create 4;
      regex_edges;
      step_code_v;
      step_code_e;
    }
  in
  let prof = Profile.current () in
  (match prof with Some c -> Profile.begin_path c | None -> ());
  let timed_step ~label ~span_name f =
    let sp = Trace.begin_span ~cat:"path" ~args:[ ("step", label) ] span_name in
    let t0 = Unix.gettimeofday () in
    f ();
    let ms = (Unix.gettimeofday () -. t0) *. 1000. in
    Trace.end_span sp;
    let rows = List.length st.rows in
    Metrics.add m_step_rows rows;
    Metrics.observe h_step_us (ms *. 1000.);
    (match prof with
    | Some c -> Profile.note_step c ~label ~rows ~ms
    | None -> ())
  in
  (* Head *)
  timed_step ~label:("seed " ^ vstep_name plan.px_head) ~span_name:"path.seed"
    (fun () ->
      let seeds, declared, ref_label = head_seeds st plan.px_head in
      st.slots <-
        [
          {
            s_kind = `V;
            s_label =
              (match label_of_vstep plan.px_head with
              | Some l -> Some l
              | None -> ref_label);
            s_type_name = declared;
            s_step = step_code_v 0;
          };
        ];
      st.rows <- List.map (fun cell -> [| cell |]) seeds;
      st.vstep_count <- 1;
      register_label st plan.px_head;
      retain st;
      Metrics.add m_seed_rows (List.length st.rows));
  List.iter
    (fun xs ->
      timed_step ~label:(xstep_label xs) ~span_name:"path.step" (fun () ->
          Metrics.incr m_steps;
          match xs with
          | X_step (e, v) -> expand_step st e v
          | X_regex xr ->
              if !use_automaton then expand_regex_nfa st xr
              else expand_regex st xr.xr_body xr.xr_op xr.xr_loc))
    plan.px_steps;
  ( { slots = Array.of_list st.slots; rows = Array.of_list st.rows },
    st.label_kinds )

let label_positions (c : component) =
  List.filter_map
    (fun i ->
      match c.slots.(i).s_label with
      | Some l -> Some (norm l, i)
      | None -> None)
    (List.init (Array.length c.slots) Fun.id)

let join_components (a : component) (b : component) loc : component =
  let apos = label_positions a and bpos = label_positions b in
  let shared =
    List.filter (fun (l, _) -> List.mem_assoc l bpos) apos
  in
  if shared = [] then
    error loc "'and' composition requires a shared label between the operands";
  let a_keys = List.map snd shared in
  let b_keys = List.map (fun (l, _) -> List.assoc l bpos) shared in
  let b_drop = b_keys in
  let b_keep =
    List.filter (fun i -> not (List.mem i b_drop)) (List.init (Array.length b.slots) Fun.id)
  in
  let index = Hashtbl.create (max 16 (Array.length b.rows)) in
  Array.iter
    (fun row ->
      let key = List.map (fun i -> row.(i)) b_keys in
      Hashtbl.add index key row)
    b.rows;
  let out = ref [] in
  Array.iter
    (fun arow ->
      let key = List.map (fun i -> arow.(i)) a_keys in
      List.iter
        (fun brow ->
          let extra = List.map (fun i -> brow.(i)) b_keep in
          out := Array.append arow (Array.of_list extra) :: !out)
        (List.rev (Hashtbl.find_all index key)))
    a.rows;
  let slots =
    Array.append a.slots (Array.of_list (List.map (fun i -> b.slots.(i)) b_keep))
  in
  { slots; rows = Array.of_list (List.rev !out) }

let compatible_layout (a : component) (b : component) =
  Array.length a.slots = Array.length b.slots
  && Array.for_all2
       (fun x y ->
         x.s_kind = y.s_kind
         && Option.map norm x.s_label = Option.map norm y.s_label
         && Option.map norm x.s_type_name = Option.map norm y.s_type_name)
       a.slots b.slots

let mp_loc = function
  | Ast.M_path p -> p.Ast.head.Ast.v_loc
  | Ast.M_and _ | Ast.M_or _ -> Loc.dummy

let run_multipath ~db ~params ~mode ?(auto_reverse = true)
    ?(edges_needed = true) ?(max_cells = default_max_cells) mp =
  let u = Pack.universe (Db.graph db) in
  let regex_edges = Hashtbl.create 16 in
  let rec go env = function
    | Ast.M_path p ->
        let comp, _ =
          run_path ~db ~params ~u ~mode ~max_cells ~env ~regex_edges
            ~auto_reverse ~edges_needed p
        in
        [ comp ]
    | Ast.M_and (a, b) -> (
        let ca = go env a in
        match ca with
        | [ comp_a ] ->
            (* Export comp_a's label sets to the right operand. *)
            let env' = Hashtbl.copy env in
            List.iter
              (fun (lname, pos) ->
                let set = Hashtbl.create 64 in
                Array.iter (fun row -> Hashtbl.replace set row.(pos) ()) comp_a.rows;
                Hashtbl.replace env' lname set)
              (label_positions comp_a);
            let cb = go env' b in
            (match cb with
            | [ comp_b ] -> [ join_components comp_a comp_b (mp_loc b) ]
            | _ ->
                error (mp_loc b)
                  "'and' composition over 'or' alternatives is not supported; \
                   distribute the 'and'")
        | _ ->
            error (mp_loc a)
              "'and' composition over 'or' alternatives is not supported; \
               distribute the 'and'")
    | Ast.M_or (a, b) -> (
        let ca = go env a and cb = go env b in
        match (ca, cb) with
        | [ x ], [ y ] when compatible_layout x y ->
            let rows =
              List.sort_uniq compare
                (Array.to_list x.rows @ Array.to_list y.rows)
            in
            [ { slots = x.slots; rows = Array.of_list rows } ]
        | _ -> ca @ cb)
  in
  let comps = go (Hashtbl.create 4) mp in
  {
    comps;
    universe = u;
    regex_edges = Hashtbl.fold (fun e () acc -> e :: acc) regex_edges [];
  }
