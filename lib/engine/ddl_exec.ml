module Ast = Graql_lang.Ast
module Loc = Graql_lang.Loc
module Table = Graql_storage.Table
module Schema = Graql_storage.Schema
module Value = Graql_storage.Value
module Dtype = Graql_storage.Dtype
module Row_expr = Graql_relational.Row_expr
module Relop = Graql_relational.Relop
module Join = Graql_relational.Join
module Builder = Graql_graph.Builder
module Graph_store = Graql_graph.Graph_store
module Vset = Graql_graph.Vset

exception Ddl_error of Loc.t * string

let error loc fmt = Printf.ksprintf (fun msg -> raise (Ddl_error (loc, msg))) fmt
let norm = String.lowercase_ascii

let exec_create_table db ~name ~cols ~loc =
  let schema =
    try
      Schema.make
        (List.map (fun c -> { Schema.name = c.Ast.cd_name; dtype = c.Ast.cd_type }) cols)
    with Invalid_argument msg -> error loc "%s" msg
  in
  try Db.add_table db (Table.create ~name schema)
  with Failure msg -> error loc "%s" msg

let exec_create_vertex db vd = Db.add_vertex_def db vd
let exec_create_edge db ed = Db.add_edge_def db ed

(* ------------------------------------------------------------------ *)
(* Vertex building (Eq. 1)                                             *)

let table_binder table : Compile_expr.binder =
  let schema = Table.schema table in
  fun ~qual ~attr loc ->
    (match qual with
    | Some q when norm q <> norm (Table.name table) ->
        raise
          (Compile_expr.Compile_error
             (loc, Printf.sprintf "unknown qualifier %S" q))
    | _ -> ());
    match Schema.find schema attr with
    | Some i ->
        { Compile_expr.cr_index = i; cr_dtype = Schema.col_dtype schema i }
    | None ->
        raise
          (Compile_expr.Compile_error
             ( loc,
               Printf.sprintf "table %s has no column %S" (Table.name table)
                 attr ))

let params_of_db db name = Db.find_param db name

let build_vertex db (vd : Db.vertex_def) =
  let source =
    match Db.find_table db vd.vd_from with
    | Some t -> t
    | None -> error Loc.dummy "vertex %s: no such table %s" vd.vd_name vd.vd_from
  in
  let schema = Table.schema source in
  let key_cols =
    List.map
      (fun k ->
        match Schema.find schema k with
        | Some i -> i
        | None ->
            error Loc.dummy "vertex %s: table %s has no column %S" vd.vd_name
              vd.vd_from k)
      vd.vd_key
  in
  let cond =
    Option.map
      (fun e ->
        try Compile_expr.compile ~params:(params_of_db db) (table_binder source) e
        with Compile_expr.Compile_error (loc, msg) ->
          error loc "vertex %s: %s" vd.vd_name msg)
      vd.vd_where
  in
  Builder.build_vertices ?pool:(Db.pool db) ~name:vd.vd_name ~source
    ~key_cols ?cond ()

(* ------------------------------------------------------------------ *)
(* Edge building (Eq. 2)                                               *)

(* A relation participating in the driving join. [rkey] is its canonical
   qualifier; endpoints also answer to their alias and type name. *)
type rel = { rkey : string; rtable : Table.t }

type endpoint = {
  ep_which : [ `Src | `Dst ];
  ep_vset : Vset.t;
  ep_quals : string list; (* normalized names this endpoint answers to *)
  ep_key_names : string list;
}

let endpoint_of store which (ve : Ast.vertex_endpoint) loc =
  let vset =
    match Graph_store.find_vset store ve.Ast.ve_type with
    | Some v -> v
    | None -> error loc "no such vertex type %S" ve.Ast.ve_type
  in
  let quals =
    norm ve.Ast.ve_type
    :: (match ve.Ast.ve_alias with Some a -> [ norm a ] | None -> [])
  in
  let key_names =
    Array.to_list
      (Array.map (fun c -> norm c.Schema.name) (Schema.cols (Vset.key_schema vset)))
  in
  { ep_which = which; ep_vset = vset; ep_quals = quals; ep_key_names = key_names }

(* Which endpoint does a qualifier refer to? When both endpoints share a
   type name and no alias disambiguates, qualifying by the bare type name
   is ambiguous. *)
let endpoint_for_qual ~src ~dst q =
  let q = norm q in
  let in_src = List.mem q src.ep_quals and in_dst = List.mem q dst.ep_quals in
  if in_src && in_dst then `Ambiguous
  else if in_src then `Endpoint src
  else if in_dst then `Endpoint dst
  else `No

(* References inside the where clause, shallow-classified. *)
let rec expr_attr_refs acc = function
  | Ast.E_attr (q, a, loc) -> (q, a, loc) :: acc
  | Ast.E_binop (_, x, y, _) -> expr_attr_refs (expr_attr_refs acc x) y
  | Ast.E_unop (_, x, _) | Ast.E_is_null (x, _, _) -> expr_attr_refs acc x
  | Ast.E_call (_, args, _) ->
      List.fold_left
        (fun acc -> function Ast.A_expr e -> expr_attr_refs acc e | Ast.A_star -> acc)
        acc args
  | Ast.E_lit _ | Ast.E_param _ -> acc

let build_edge db store (ed : Db.edge_def) =
  let loc = Loc.dummy in
  let src = endpoint_of store `Src ed.ed_src loc in
  let dst = endpoint_of store `Dst ed.ed_dst loc in
  let conjuncts =
    match ed.ed_where with Some e -> Compile_expr.conjuncts e | None -> []
  in
  if conjuncts = [] && ed.ed_from = None then
    error loc "edge %s: a where clause (or an associated table) is required"
      ed.ed_name;
  (* --- classify attribute references --------------------------------- *)
  let resolve_qual q lc =
    match endpoint_for_qual ~src ~dst q with
    | `Ambiguous ->
        error lc
          "edge %s: qualifier %S matches both endpoints; use 'as' aliases"
          ed.ed_name q
    | `Endpoint ep -> `Endpoint ep
    | `No -> (
        match Db.find_table db q with
        | Some t -> `Table t
        | None -> error lc "edge %s: unknown qualifier %S" ed.ed_name q)
  in
  (* Inclusion pass: an endpoint joins the driving relation when the where
     clause touches one of its non-key attributes. *)
  let include_src = ref false and include_dst = ref false in
  let mark_endpoint ep attr =
    let is_key = List.mem (norm attr) ep.ep_key_names in
    if not is_key then
      match ep.ep_which with
      | `Src -> include_src := true
      | `Dst -> include_dst := true
  in
  List.iter
    (fun conj ->
      List.iter
        (fun (q, a, lc) ->
          match q with
          | Some q -> (
              match resolve_qual q lc with
              | `Endpoint ep -> mark_endpoint ep a
              | `Table _ -> ())
          | None -> (
              (* Unqualified: if it names an endpoint non-key attribute
                 uniquely, mark it; assoc columns win otherwise. *)
              let assoc_has =
                match ed.ed_from with
                | Some tn -> (
                    match Db.find_table db tn with
                    | Some t -> Schema.find (Table.schema t) a <> None
                    | None -> false)
                | None -> false
              in
              if not assoc_has then begin
                let src_has = Schema.find (Vset.attr_schema src.ep_vset) a <> None in
                let dst_has = Schema.find (Vset.attr_schema dst.ep_vset) a <> None in
                if src_has && not dst_has then mark_endpoint src a
                else if dst_has && not src_has then mark_endpoint dst a
                else if src_has && dst_has then
                  error lc "edge %s: ambiguous attribute %S (qualify it)"
                    ed.ed_name a
              end))
        (expr_attr_refs [] conj))
    conjuncts;
  (* Key-link atoms: Eq(endpoint.key, other.col). Collected as
     (endpoint, key name, other side qualifier/attr). *)
  let as_attr = function Ast.E_attr (q, a, lc) -> Some (q, a, lc) | _ -> None in
  let is_endpoint_key q a lc =
    match q with
    | None -> None
    | Some q -> (
        match endpoint_for_qual ~src ~dst q with
        | `Endpoint ep when List.mem (norm a) ep.ep_key_names -> Some ep
        | `Endpoint _ | `No -> None
        | `Ambiguous ->
            error lc "edge %s: qualifier %S matches both endpoints" ed.ed_name q)
  in
  (* Relations included in the driving join, in first-use order. *)
  let rels : rel list ref = ref [] in
  let add_rel rkey rtable =
    if not (List.exists (fun r -> r.rkey = rkey) !rels) then
      rels := !rels @ [ { rkey; rtable } ]
  in
  (match ed.ed_from with
  | Some tn -> (
      match Db.find_table db tn with
      | Some t -> add_rel (norm tn) t
      | None -> error loc "edge %s: no such table %S" ed.ed_name tn)
  | None -> ());
  let endpoint_rel ep = List.hd ep.ep_quals in
  if !include_src then add_rel (endpoint_rel src) (Vset.attr_table src.ep_vset);
  if !include_dst then add_rel (endpoint_rel dst) (Vset.attr_table dst.ep_vset);
  (* Any other catalog tables referenced by qualifier join in too. *)
  List.iter
    (fun conj ->
      List.iter
        (fun (q, _, lc) ->
          match q with
          | Some q -> (
              match resolve_qual q lc with
              | `Table t -> add_rel (norm q) t
              | `Endpoint _ -> ())
          | None -> ())
        (expr_attr_refs [] conj))
    conjuncts;
  (* Classify conjuncts into key links, join atoms and residuals. A key
     link feeds an *unincluded* endpoint's key from a relation column. *)
  let included ep =
    match ep.ep_which with `Src -> !include_src | `Dst -> !include_dst
  in
  let key_links = ref [] (* (endpoint, key name, rel qualifier, attr) *) in
  let join_atoms = ref [] (* (qual1, attr1, qual2, attr2, loc) *) in
  let residuals = ref [] in
  let classify conj =
    match conj with
    | Ast.E_binop (Ast.Eq, a, b, lc) -> (
        match (as_attr a, as_attr b) with
        | Some (qa, aa, la), Some (qb, ab, lb) -> (
            let epa = is_endpoint_key qa aa la
            and epb = is_endpoint_key qb ab lb in
            match (epa, epb) with
            | Some ep, None when not (included ep) ->
                key_links := (ep, norm aa, qb, ab, lb) :: !key_links
            | None, Some ep when not (included ep) ->
                key_links := (ep, norm ab, qa, aa, la) :: !key_links
            | Some ep1, Some ep2 when not (included ep1) && not (included ep2) ->
                (* Both sides are unincluded endpoint keys (A.id = B.id):
                   include the source endpoint and link the other from it. *)
                let to_include, linked, lattr, oattr, olc =
                  if ep1.ep_which = `Src then (ep1, ep2, norm ab, aa, la)
                  else (ep2, ep1, norm aa, ab, lb)
                in
                (match to_include.ep_which with
                | `Src -> include_src := true
                | `Dst -> include_dst := true);
                add_rel (endpoint_rel to_include) (Vset.attr_table to_include.ep_vset);
                key_links :=
                  (linked, lattr, Some (endpoint_rel to_include), oattr, olc)
                  :: !key_links
            | _ ->
                (* At least one side lives in an included relation: a join
                   atom between relations (or a residual filter if both
                   sides land in the same relation). *)
                join_atoms := (qa, aa, qb, ab, lc) :: !join_atoms)
        | _ -> residuals := conj :: !residuals)
    | _ -> residuals := conj :: !residuals
  in
  List.iter classify conjuncts;
  let key_links = List.rev !key_links
  and join_atoms = List.rev !join_atoms
  and residuals = List.rev !residuals in
  (* If nothing was included at all, drive from the source endpoint. *)
  if !rels = [] then begin
    include_src := true;
    add_rel (endpoint_rel src) (Vset.attr_table src.ep_vset)
  end;
  let rels = !rels in
  (* --- resolve a (qual, attr) to (rel, col) -------------------------- *)
  let rel_for_qual q lc =
    let q = norm q in
    (* Endpoint aliases map to the endpoint's canonical rel key. *)
    let q =
      match endpoint_for_qual ~src ~dst q with
      | `Endpoint ep -> endpoint_rel ep
      | `No | `Ambiguous -> q
    in
    match List.find_opt (fun r -> r.rkey = q) rels with
    | Some r -> r
    | None -> error lc "edge %s: %S is not part of the driving join" ed.ed_name q
  in
  let resolve_col q a lc =
    match q with
    | Some q -> (
        let r = rel_for_qual q lc in
        match Schema.find (Table.schema r.rtable) a with
        | Some i -> (r.rkey, i)
        | None ->
            error lc "edge %s: %s has no column %S" ed.ed_name r.rkey a)
    | None -> (
        let hits =
          List.filter_map
            (fun r ->
              Option.map (fun i -> (r.rkey, i)) (Schema.find (Table.schema r.rtable) a))
            rels
        in
        match hits with
        | [ hit ] -> hit
        | [] -> error lc "edge %s: unknown column %S" ed.ed_name a
        | _ -> error lc "edge %s: ambiguous column %S (qualify it)" ed.ed_name a)
  in
  (* --- left-deep join ------------------------------------------------ *)
  let atoms_resolved =
    List.map
      (fun (qa, aa, qb, ab, lc) -> (resolve_col qa aa lc, resolve_col qb ab lc, lc))
      join_atoms
  in
  let joined = ref [ (List.hd rels).rkey ] in
  let offsets = Hashtbl.create 8 in
  Hashtbl.replace offsets (List.hd rels).rkey 0;
  let driving = ref (List.hd rels).rtable in
  let remaining = ref (List.tl rels) in
  while !remaining <> [] do
    (* Pick the next relation connected to the joined set by >=1 atoms. *)
    let pick =
      List.find_opt
        (fun r ->
          List.exists
            (fun ((rk1, _), (rk2, _), _) ->
              (rk1 = r.rkey && List.mem rk2 !joined)
              || (rk2 = r.rkey && List.mem rk1 !joined))
            atoms_resolved)
        !remaining
    in
    match pick with
    | None ->
        error loc
          "edge %s: where clause does not connect all referenced tables into \
           one join"
          ed.ed_name
    | Some r ->
        let on =
          List.filter_map
            (fun ((rk1, c1), (rk2, c2), _) ->
              if rk1 = r.rkey && List.mem rk2 !joined then
                Some (Hashtbl.find offsets rk2 + c2, c1)
              else if rk2 = r.rkey && List.mem rk1 !joined then
                Some (Hashtbl.find offsets rk1 + c1, c2)
              else None)
            atoms_resolved
        in
        let base = Table.arity !driving in
        driving :=
          Join.hash_join ?pool:(Db.pool db) ~name:(ed.ed_name ^ "_drv")
            ~left:!driving ~right:r.rtable ~on ();
        Hashtbl.replace offsets r.rkey base;
        joined := r.rkey :: !joined;
        remaining := List.filter (fun x -> x.rkey <> r.rkey) !remaining
  done;
  let driving = !driving in
  (* Atoms fully inside one relation act as residual filters; they were
     classified as join atoms above, so re-apply any whose two sides landed
     in the same relation. *)
  let same_rel_filters =
    List.filter_map
      (fun ((rk1, c1), (rk2, c2), _) ->
        if rk1 = rk2 then
          Some
            (Row_expr.Cmp
               ( Row_expr.Eq,
                 Row_expr.Col (Hashtbl.find offsets rk1 + c1),
                 Row_expr.Col (Hashtbl.find offsets rk2 + c2) ))
        else None)
      atoms_resolved
  in
  (* --- residual condition -------------------------------------------- *)
  let driving_binder : Compile_expr.binder =
   fun ~qual ~attr lc ->
    let rkey, col = resolve_col qual attr lc in
    let idx = Hashtbl.find offsets rkey + col in
    {
      Compile_expr.cr_index = idx;
      cr_dtype = Schema.col_dtype (Table.schema driving) idx;
    }
  in
  let residual_exprs =
    List.map
      (fun conj ->
        try Compile_expr.compile ~params:(params_of_db db) driving_binder conj
        with Compile_expr.Compile_error (lc, msg) ->
          error lc "edge %s: %s" ed.ed_name msg)
      residuals
    @ same_rel_filters
  in
  let cond =
    match residual_exprs with
    | [] -> None
    | e :: rest -> Some (List.fold_left (fun a b -> Row_expr.And (a, b)) e rest)
  in
  (* --- endpoint key source columns ----------------------------------- *)
  let key_source ep =
    if included ep then
      (* The endpoint's own relation is in the join: its key columns are
         its attr-table columns. *)
      let base = Hashtbl.find offsets (endpoint_rel ep) in
      let schema = Vset.attr_schema ep.ep_vset in
      List.map
        (fun kname ->
          match Schema.find schema kname with
          | Some i -> base + i
          | None ->
              error loc "edge %s: endpoint lost key column %S" ed.ed_name kname)
        ep.ep_key_names
    else
      List.map
        (fun kname ->
          match
            List.find_opt
              (fun (lep, lname, _, _, _) ->
                lep.ep_which = ep.ep_which && lname = kname)
              key_links
          with
          | Some (_, _, q, a, lc) ->
              let rkey, col = resolve_col q a lc in
              Hashtbl.find offsets rkey + col
          | None ->
              error loc
                "edge %s: the where clause never determines key %S of the %s \
                 endpoint"
                ed.ed_name kname
                (match ep.ep_which with `Src -> "source" | `Dst -> "target"))
        ep.ep_key_names
  in
  let src_key = key_source src and dst_key = key_source dst in
  let dedupe =
    (not (Vset.one_to_one src.ep_vset)) || not (Vset.one_to_one dst.ep_vset)
  in
  Builder.build_edges ?pool:(Db.pool db) ~name:ed.ed_name ~src:src.ep_vset
    ~dst:dst.ep_vset ~driving ~src_key ~dst_key ?cond ~dedupe ()

(* Tables an edge view reads: the endpoints' source tables, the assoc
   table, and any catalog tables named as qualifiers in the where clause
   (the Fig. 4 multi-way joins). Used for selective rebuilds. *)
let edge_deps db (ed : Db.edge_def) =
  let vertex_source vt =
    List.find_map
      (fun (vd : Db.vertex_def) ->
        if norm vd.Db.vd_name = norm vt then Some vd.Db.vd_from else None)
      (Db.vertex_defs db)
  in
  let base =
    List.filter_map Fun.id
      [
        vertex_source ed.ed_src.Ast.ve_type;
        vertex_source ed.ed_dst.Ast.ve_type;
        ed.ed_from;
      ]
  in
  let quals =
    match ed.ed_where with
    | None -> []
    | Some w ->
        List.concat_map
          (fun conj ->
            List.filter_map
              (fun (q, _, _) ->
                match q with
                | Some q when Db.find_table db q <> None -> Some q
                | _ -> None)
              (expr_attr_refs [] conj))
          (Compile_expr.conjuncts w)
  in
  List.sort_uniq compare (List.map norm (base @ quals))

(* Selective rebuild: a view is reused from the previous build when every
   table it depends on is at the same version — and, for edges, when both
   endpoint views were themselves reused (vertex ids must not shift). *)
let build_graph db =
  let store = Graph_store.create () in
  let prev = Db.last_built db in
  let prev_fps = Db.view_fingerprints db in
  let fps = ref [] in
  let fingerprint deps =
    List.map (fun t -> (t, Db.table_version db t)) deps
  in
  let prev_fp name = List.assoc_opt (norm name) prev_fps in
  List.iter
    (fun (vd : Db.vertex_def) ->
      let fp = fingerprint [ norm vd.Db.vd_from ] in
      let reused =
        match prev with
        | Some pg when prev_fp vd.Db.vd_name = Some fp ->
            Graph_store.find_vset pg vd.Db.vd_name
        | _ -> None
      in
      let vset =
        match reused with Some v -> v | None -> build_vertex db vd
      in
      Graph_store.add_vset store vset;
      fps := (norm vd.Db.vd_name, fp) :: !fps)
    (Db.vertex_defs db);
  List.iter
    (fun (ed : Db.edge_def) ->
      let fp = fingerprint (edge_deps db ed) in
      let endpoints_reused =
        match prev with
        | Some pg ->
            let same vt =
              match (Graph_store.find_vset pg vt, Graph_store.find_vset store vt) with
              | Some a, Some b -> a == b
              | _ -> false
            in
            same ed.ed_src.Ast.ve_type && same ed.ed_dst.Ast.ve_type
        | None -> false
      in
      let reused =
        match prev with
        | Some pg when endpoints_reused && prev_fp ed.ed_name = Some fp ->
            Graph_store.find_eset pg ed.ed_name
        | _ -> None
      in
      let eset =
        match reused with Some e -> e | None -> build_edge db store ed
      in
      Graph_store.add_eset store eset;
      fps := (norm ed.ed_name, fp) :: !fps)
    (Db.edge_defs db);
  Db.set_view_fingerprints db (List.rev !fps);
  store

let install db = Db.set_builder db build_graph
