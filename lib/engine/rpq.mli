(** Regular path queries as a product automaton (ROADMAP item 4).

    A path-regex segment [( body )op] is compiled to a small NFA whose
    states are positions inside the group body: state [0] is the entry,
    state [j] means "j atoms of the current traversal matched", and a
    complete body traversal returns to position [1] via the loop
    transition (for [*] and [+]) or chains on (for [{n}]). The
    construction is epsilon-free by design — every transition consumes
    exactly one edge traversal — and can optionally be determinized by
    subset construction ({!determinize}).

    Evaluation runs frontier BFS over the product of the graph with the
    automaton: the visited set is a [(vertex, state)] relation held in
    per-(state, vertex-type) {!Graql_util.Bitset} rows, so each product
    pair is expanded at most once. This replaces the per-row Hashtbl
    closures in [path_exec.ml], which enumerate every *path* through the
    group body per round and are combinatorial for multi-atom bodies.

    The evaluator reproduces the closure engine's observable behaviour
    byte-for-byte: endpoint sets are returned sorted by packed cell, [*]
    includes the start, [+] requires at least one complete traversal,
    [{n}] means exactly [n] complete traversals, and the set of traversed
    edges reported for subgraph capture contains exactly the edges lying
    on complete (and, for [{n}], full-length) body traversals.

    One observable difference: the compiler validates the whole body
    (label/seed/type errors, condition compilation) eagerly, while the
    closure engine only validated traversals it actually exercised. The
    static checker rejects all such bodies before execution, so the
    difference is only reachable through the raw engine API. *)

module Ast = Graql_lang.Ast
module Loc = Graql_lang.Loc
module Value = Graql_storage.Value

exception Rpq_error of Loc.t * string

type t
(** A compiled automaton, bound to one universe: traversal tables per
    (transition, source type) and compiled step conditions per
    (transition, edge/vertex type) are resolved eagerly, so {!eval} is
    read-only and safe to run from pool workers. *)

(* ------------------------------------------------------------------ *)
(* Shape introspection (pure, total — shared with EXPLAIN)             *)

type state_info = {
  si_label : string;  (** display row, e.g. ["state 1: --knows--> PersonVtx"] *)
  si_estep : Ast.estep option;  (** arriving traversal; [None] for entry states *)
  si_vstep : Ast.vstep option;  (** arriving landing constraint *)
  si_initial : bool;
  si_accepting : bool;
}

val shape :
  body:(Ast.estep * Ast.vstep) list ->
  op:Ast.rx_op ->
  reversed:bool ->
  state_info array
(** The automaton shape for a group body, without compiling conditions.
    Never raises: a malformed op (negative [{n}]) degrades to the single
    entry state. EXPLAIN uses this to emit one plan row per state; the
    executor's per-state profile samples use the same labels, so
    EXPLAIN ANALYZE lines up est-vs-actual per automaton state. *)

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)

val compile :
  params:(string -> Value.t option) ->
  u:Pack.universe ->
  ?reversed:bool ->
  ?exit_vstep:Ast.vstep ->
  body:(Ast.estep * Ast.vstep) list ->
  op:Ast.rx_op ->
  loc:Loc.t ->
  unit ->
  t
(** Compile a group body. [reversed] builds the reversal of the language:
    transitions flipped (edge directions inverted), landing constraints
    shifted to the forward source position, initial states = forward
    accepting states (with the forward arrival constraint re-checked on
    seeds), accepting state = forward entry. Reversed automata do not
    report traversed edges — the planner only reverses a regex when the
    query's output cannot observe them. [exit_vstep] is a type/condition
    filter applied to endpoints (the reversed path's landing step).

    Raises {!Rpq_error} on labels or subgraph seeds inside the body,
    unknown vertex types, negative [{n}] counts, and condition
    compilation failures — the same diagnostics as the closure engine. *)

val nstates : t -> int
val states : t -> state_info array
val is_reversed : t -> bool

val determinize : t -> t
(** Subset construction. The result accepts the same language and
    {!eval} returns identical endpoint sets, but it does not report
    traversed edges (subgraph capture keeps the NFA). Raises
    [Invalid_argument] on reversed automata. *)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)

val eval :
  t ->
  ?pool:Graql_parallel.Domain_pool.t ->
  ?stats:int array ->
  ?note:(int -> unit) ->
  start:int ->
  unit ->
  int list
(** [eval a ~start ()] runs product BFS from packed vertex cell [start]
    and returns the packed endpoint cells, sorted ascending (the closure
    engine's order). [note] receives every packed edge cell lying on a
    complete body traversal — exactly the closure engine's reported set.
    [stats.(s)] is incremented by the number of product pairs visited at
    state [s]. When [pool] is given, frontiers past a size threshold are
    expanded chunk-parallel; results are unions of per-chunk discoveries
    and therefore identical at any domain count. *)
