(** Backend database state: tables, graph views, result subgraphs, query
    parameters.

    Vertex/edge declarations are retained as *definitions*; built views are
    (re)generated from table data on demand. This implements the paper's
    ingest semantics — "data ingest triggers not only the population of
    rows in the table, but also the generation of associated vertex and
    edge instances derived from the table" — by invalidating the graph on
    ingest and rebuilding it before the next graph query. *)

module Table = Graql_storage.Table
module Value = Graql_storage.Value
module Ast = Graql_lang.Ast

type vertex_def = {
  vd_name : string;
  vd_key : string list;
  vd_from : string;
  vd_where : Ast.expr option;
}

type edge_def = {
  ed_name : string;
  ed_src : Ast.vertex_endpoint;
  ed_dst : Ast.vertex_endpoint;
  ed_from : string option;
  ed_where : Ast.expr option;
}

type t

val create : ?pool:Graql_parallel.Domain_pool.t -> unit -> t
val pool : t -> Graql_parallel.Domain_pool.t option

val wal : t -> Wal.t option
val set_wal : t -> Wal.t option -> unit
(** Attach (or detach) the write-ahead log. While attached, the executor
    logs every mutating statement to it — fsync'd — before applying it
    (see {!Wal} and DESIGN.md §9). Recovery must finish before the log
    is attached, or replayed statements would be logged twice. *)

val tables : t -> Graql_storage.Table_catalog.t
val add_table : t -> Table.t -> unit
val find_table : t -> string -> Table.t option
val find_table_exn : t -> string -> Table.t

val add_vertex_def : t -> vertex_def -> unit
val add_edge_def : t -> edge_def -> unit
val vertex_defs : t -> vertex_def list
val edge_defs : t -> edge_def list

val invalidate_graph : t -> unit
(** Drop the built graph; it rebuilds lazily on next access. The previous
    build is retained so unchanged views can be reused. *)

val touch_table : t -> string -> unit
(** Record that a table's contents changed (ingest does this). Bumps the
    table's version and invalidates the graph; on the next access only
    views depending on touched tables rebuild. *)

val table_version : t -> string -> int

val last_built : t -> Graql_graph.Graph_store.t option
(** The most recent complete build, for selective reuse by the builder. *)

val view_fingerprints : t -> (string * (string * int) list) list
(** Per view: the (table, version) dependencies it was built against. *)

val set_view_fingerprints : t -> (string * (string * int) list) list -> unit

val graph : t -> Graql_graph.Graph_store.t
(** The built graph; rebuilds from definitions if invalidated. Raises
    [Failure] if a definition cannot be built (the static checker should
    have caught it). The builder is injected by {!set_builder} (wired up
    by [Ddl_exec] to avoid a dependency cycle). *)

val set_builder : t -> (t -> Graql_graph.Graph_store.t) -> unit

val add_subgraph : t -> Graql_graph.Subgraph.t -> unit
val find_subgraph : t -> string -> Graql_graph.Subgraph.t option
val subgraph_names : t -> string list

val set_param : t -> string -> Value.t -> unit
val find_param : t -> string -> Value.t option

val params : t -> (string * Value.t) list
(** All session parameters, sorted by name — exported with the database
    so a checkpoint preserves scripted [set] statements. *)

val register_result_table : t -> Table.t -> unit
(** [into table] result registration: replaces any previous table with the
    same name (results may be overwritten across runs). *)

val meta : t -> Graql_analysis.Meta.t
(** Metadata snapshot of the current state, with sizes — what the GEMS
    front-end catalog would serve. *)

val lock : t -> (unit -> 'a) -> 'a
(** Serialize result registration during parallel statement execution. *)

(** {2 Reader-writer epoch}

    The serve layer's concurrency discipline (DESIGN.md §14): read-only
    statements run concurrently under {!read_locked}; anything that
    mutates state runs exclusively under {!write_locked}. The epoch
    counts completed write sections — two reads that pinned the same
    epoch observed identical database state, which is what lets the
    overload chaos drill compare concurrent results against a
    sequential replay of the accepted log. *)

val read_locked : t -> (unit -> 'a) -> int * 'a
(** Run [f] holding the shared (reader) side; no writer runs
    concurrently. Returns the epoch pinned for [f]'s lifetime together
    with [f]'s result. Readers yield to waiting writers
    (writer-preferring), so a read flood cannot starve ingest. *)

val write_locked : t -> (unit -> 'a) -> 'a
(** Run [f] holding the exclusive (writer) side: no reader or other
    writer runs concurrently. The epoch is bumped on release, even if
    [f] raises (a failed write may have partially mutated state). *)

val epoch : t -> int
(** The current epoch: the number of completed {!write_locked}
    sections. *)
