(** Cost-based planning for table selects, driven by the per-column
    catalog statistics maintained at ingest ({!Graql_storage.Column.stats}).

    The planner classifies where-clause conjuncts into single-relation
    filters (pushed below the joins), cross-relation equality atoms (join
    conditions), and a residual evaluated after all joins; then orders
    the joins greedily left-deep by estimated output cardinality
    (|L ⋈ R| ≈ |L|·|R| / max(d_L, d_R) per atom). Reordering and pushdown
    preserve the result multiset and row order for inner equi-joins under
    a conjunctive predicate; only operator order changes. *)

module Ast = Graql_lang.Ast
module Loc = Graql_lang.Loc
module Table = Graql_storage.Table
module Value = Graql_storage.Value

exception Plan_error of Loc.t * string

type rel = {
  r_names : string list;  (** lowercased table name, then alias *)
  r_table : Table.t;
}

val rel_key : rel -> string
(** Display name: the first (table) name. *)

val rel_id : rel -> string
(** Unique identity within one from clause: all names joined with "/",
    so two aliases of the same table stay distinct. *)

type atom = {
  a_rel : string;
  a_attr : string;
  a_loc : Loc.t;
  b_rel : string;
  b_attr : string;
  b_loc : Loc.t;
}

type scan_step = {
  sc_rel : rel;
  sc_pushed : Ast.expr list;  (** conjuncts filtered at the scan *)
  sc_rows : int;  (** actual base-table rows *)
  sc_est : float;  (** estimated rows after pushdown *)
}

type join_step = {
  js_rel : rel;
  js_est : float;
  js_build_right : bool;
      (** statistics pick the incoming relation as hash build side; the
          executor still decides by actual materialized row counts, which
          can differ when estimates are off *)
}

type t = {
  tp_scans : scan_step list;  (** all relations, in chosen join order *)
  tp_joins : join_step list;  (** length [scans - 1] *)
  tp_atoms : atom list;  (** every cross-relation equality conjunct *)
  tp_residual : Ast.expr list;  (** evaluated after the last join *)
  tp_residual_est : float option;
}

val plan :
  params:(string -> Value.t option) ->
  loc:Loc.t ->
  rel list ->
  Ast.expr list ->
  t
(** Plan the given relations and where-clause conjuncts. Raises
    {!Plan_error} when the relations are not connected by join atoms (the
    executor's long-standing error) or the list is empty. The plan is a
    pure function of tables and statistics — never of the domain pool. *)

val of_select :
  db:Db.t -> params:(string -> Value.t option) -> Ast.select_table -> t
(** Plan a select-table statement against the catalog; raises
    {!Plan_error} on an unknown table. This is the EXPLAIN entry point —
    the executor ({!Table_exec}) builds the same plan from its own
    observed scans. *)

val atoms_for :
  t -> incoming:string -> joined:string list ->
  (string * string * Loc.t * string * Loc.t) list
(** Join atoms linking [incoming] to the already-joined rel keys, as
    (joined rel, joined attr, its loc, incoming attr, its loc). *)

val selectivity :
  params:(string -> Value.t option) -> Table.t -> Ast.expr -> float
(** Estimated fraction of rows satisfying one conjunct; statistics-backed
    for equality/range/null atoms, 0.1 default otherwise. *)

val default_selectivity : float

val step_strings : t -> string list
(** One human-readable line per planned operator, in execution order. *)

val to_string : t -> string
(** EXPLAIN rendering ("table plan:" header plus indented steps). *)

val op_estimates : t -> (string * float) list
(** (operator label, estimated rows) in the executor's emission order,
    using the same labels the profiler records ("scan:users",
    "filter:users", "join:posts", "filter") — EXPLAIN ANALYZE joins these
    against actual samples. *)
