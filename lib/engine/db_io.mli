(** Saving a database back to files: the paper's data sources "reside on a
    high performance parallel filesystem ... for purposes of data ingest
    and eventual output to files". Export writes one CSV per table plus a
    [schema.graql] that reconstructs the DDL and re-ingests the data, so a
    dump can be reloaded with [graql run schema.graql --data-dir DIR]. *)

val ddl_of_db : Db.t -> string
(** The create table / create vertex / create edge statements describing
    the database, in dependency order, followed by ingest statements. *)

val export : Db.t -> dir:string -> unit
(** Write every table as [<name>.csv] (header row included) plus
    [schema.graql] into [dir] (created if missing). Session parameters
    are persisted as [set] statements. Result subgraphs are views and
    are not persisted — re-run their queries after reload.

    Each file is written to a temp file, fsync'd, and renamed into
    place, so a crash (or power failure) mid-export never leaves a torn
    file; a [MANIFEST] with per-file MD5 checksums and sizes is written
    last, certifying a complete dump, and the directory itself is
    fsync'd so the renames stick. *)

val export_files : Db.t -> (string * string) list
(** The same content as {!export}, as (filename, contents) pairs — used by
    tests and in-memory round-trips. Does not include the manifest. *)

val manifest_name : string
(** ["MANIFEST"]. *)

val manifest_of_files : (string * string) list -> string
(** Manifest text for (filename, contents) pairs: one
    ["<md5hex> <size> <name>"] line per file. *)

val verify : dir:string -> (string * string) list
(** Check every file listed in [dir]'s manifest: missing files, size
    mismatches, checksum mismatches. Empty list = dump is intact (or has
    no manifest — pre-manifest dumps are accepted as-is). *)

val checked_loader : dir:string -> (string -> string)
(** An ingest loader resolving names against [dir] that verifies each
    file's size and checksum against the manifest (when one exists) before
    returning its contents — a half-written dump must never load
    silently. Raises [Graql_error.Error (Io _)] on any mismatch. *)

(** {1 Durability: checkpoints + crash recovery}

    A durable database directory holds at most one live checkpoint
    snapshot ([checkpoint-NNNNNN/], a normal {!export} with manifest)
    and the write-ahead log of everything since it
    ([wal-NNNNNN.log], same epoch number — see {!Wal}). *)

val checkpoint_dir_name : epoch:int -> string

val latest_checkpoint : dir:string -> (int * string) option
(** Newest [(epoch, path)] whose [MANIFEST] is present — i.e. whose
    export completed. Interrupted checkpoint attempts are ignored. *)

type recovery = {
  rec_epoch : int;  (** checkpoint epoch the database restarted from *)
  rec_checkpoint : bool;  (** a checkpoint snapshot was loaded *)
  rec_replayed : int;  (** WAL records re-applied on top of it *)
  rec_truncated : int;  (** torn-tail bytes dropped from the WAL *)
}

val replay : Db.t -> Wal.record -> unit
(** Re-apply one logged operation. A statement that fails with a typed
    {!Graql_error.t} is skipped (it failed identically in the original
    run); anything else propagates. Used by {!recover} and by a
    replication follower applying the primary's stream. *)

val gc_superseded : dir:string -> epoch:int -> unit
(** Delete every checkpoint directory and WAL file of an epoch older
    than [epoch] (best-effort), then fsync the directory — the cleanup
    step of {!checkpoint}, also run by a follower after it mirrors an
    epoch advance. *)

val recover : Db.t -> dir:string -> recovery
(** Rebuild the database state from [dir]: load the latest complete
    checkpoint (verifying every file against its manifest), then replay
    the matching WAL epoch, truncating a torn tail rather than failing
    on it. The [db] must be freshly created with no WAL attached —
    attach one (same epoch) after this returns. Raises
    [Graql_error.Error (Io _)] on genuine corruption: a mangled WAL
    header, a bad CRC that is not at the tail, an undecodable record, or
    a checkpoint failing manifest verification. An empty or absent
    directory recovers to an empty database. *)

val checkpoint : Db.t -> Wal.t -> unit
(** Fold the log into a fresh checkpoint snapshot, advance the WAL to
    the next epoch, and delete superseded epochs. Safe against a crash
    at any point: recovery always finds either the old checkpoint with
    its full log or the new checkpoint with an empty one. *)
