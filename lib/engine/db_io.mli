(** Saving a database back to files: the paper's data sources "reside on a
    high performance parallel filesystem ... for purposes of data ingest
    and eventual output to files". Export writes one CSV per table plus a
    [schema.graql] that reconstructs the DDL and re-ingests the data, so a
    dump can be reloaded with [graql run schema.graql --data-dir DIR]. *)

val ddl_of_db : Db.t -> string
(** The create table / create vertex / create edge statements describing
    the database, in dependency order, followed by ingest statements. *)

val export : Db.t -> dir:string -> unit
(** Write every table as [<name>.csv] (header row included) plus
    [schema.graql] into [dir] (created if missing). Result subgraphs are
    views and are not persisted — re-run their queries after reload.

    Each file is written to a temp file and renamed into place, so a crash
    mid-export never leaves a torn file; a [MANIFEST] with per-file MD5
    checksums and sizes is written last, certifying a complete dump. *)

val export_files : Db.t -> (string * string) list
(** The same content as {!export}, as (filename, contents) pairs — used by
    tests and in-memory round-trips. Does not include the manifest. *)

val manifest_name : string
(** ["MANIFEST"]. *)

val manifest_of_files : (string * string) list -> string
(** Manifest text for (filename, contents) pairs: one
    ["<md5hex> <size> <name>"] line per file. *)

val verify : dir:string -> (string * string) list
(** Check every file listed in [dir]'s manifest: missing files, size
    mismatches, checksum mismatches. Empty list = dump is intact (or has
    no manifest — pre-manifest dumps are accepted as-is). *)

val checked_loader : dir:string -> (string -> string)
(** An ingest loader resolving names against [dir] that verifies each
    file's size and checksum against the manifest (when one exists) before
    returning its contents — a half-written dump must never load
    silently. Raises [Graql_error.Error (Io _)] on any mismatch. *)
