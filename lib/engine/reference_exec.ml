module Ast = Graql_lang.Ast
module Value = Graql_storage.Value
module Vset = Graql_graph.Vset
module Eset = Graql_graph.Eset

exception Unsupported of string

let norm = String.lowercase_ascii

(* Partial match: packed vertex cells of the vertex steps matched so far,
   most recent first. *)
type partial = int list

type label_info = { li_pos : int (* vstep index *); li_each : bool }

let run_path ~db ~params (p : Ast.path) =
  let u = Pack.universe (Db.graph db) in
  let labels : (string, label_info) Hashtbl.t = Hashtbl.create 4 in
  let no_slots = { Step_cond.find_slot = (fun _ -> None) } in
  (* Conditions may reference labels; resolve label refs by evaluating
     against the partial tuple. We reuse Step_cond with a slot lookup that
     maps label names to positions in the tuple-so-far (vstep indices). *)
  let slots_for_step nmatched =
    {
      Step_cond.find_slot =
        (fun name ->
          match Hashtbl.find_opt labels (norm name) with
          | Some li when li.li_pos < nmatched -> Some (li.li_pos, `V)
          | _ -> None);
    }
  in
  let row_of (partial : partial) nmatched =
    (* Step_cond reads label slots by position within the row array. *)
    let arr = Array.make nmatched 0 in
    List.iteri (fun i cell -> arr.(nmatched - 1 - i) <- cell) partial;
    arr
  in
  let vertex_ok (v : Ast.vstep) ~step_idx ~partial ~cell =
    match v.Ast.v_cond with
    | None -> true
    | Some cond ->
        let vset = Pack.vset_of u cell in
        let self_names =
          (match v.Ast.v_kind with Ast.V_named n -> [ n ] | _ -> [])
          @ (match v.Ast.v_label with Some l -> [ Ast.label_name l ] | None -> [])
        in
        let compiled =
          Step_cond.compile_vertex ~params ~universe:u
            ~slots:(slots_for_step step_idx) ~self_names ~vset cond
        in
        Step_cond.eval_vertex compiled
          ~row:(row_of partial step_idx)
          ~vertex:(Pack.id cell)
  in
  let edge_ok (e : Ast.estep) ~step_idx ~partial ~eidx ~eid =
    match e.Ast.e_cond with
    | None -> true
    | Some cond ->
        let eset = u.Pack.etypes.(eidx) in
        let compiled =
          Step_cond.compile_edge ~params ~universe:u
            ~slots:(slots_for_step step_idx)
            ~self_names:
              (match e.Ast.e_kind with Ast.E_named n -> [ n ] | Ast.E_any -> [])
            ~eset cond
        in
        Step_cond.eval_edge compiled ~row:(row_of partial step_idx) ~edge:eid
  in
  let register_label (v : Ast.vstep) idx =
    match v.Ast.v_label with
    | Some l ->
        Hashtbl.replace labels
          (norm (Ast.label_name l))
          { li_pos = idx; li_each = (match l with Ast.Each_label _ -> true | _ -> false) }
    | None -> ()
  in
  (* Head candidates. *)
  let head = p.Ast.head in
  let head_cells =
    match head.Ast.v_kind with
    | Ast.V_any ->
        List.concat
          (List.init (Array.length u.Pack.vtypes) (fun tidx ->
               List.init (Vset.size u.Pack.vtypes.(tidx)) (fun id ->
                   Pack.pack ~tidx ~id)))
    | Ast.V_named n -> (
        match Pack.vtype_index u n with
        | Some tidx ->
            List.init (Vset.size u.Pack.vtypes.(tidx)) (fun id ->
                Pack.pack ~tidx ~id)
        | None -> raise (Unsupported (Printf.sprintf "unknown head %S" n)))
    | Ast.V_seeded _ -> raise (Unsupported "seeded steps")
  in
  register_label head 0;
  let partials =
    List.filter_map
      (fun cell ->
        if vertex_ok head ~step_idx:0 ~partial:[] ~cell then Some [ cell ]
        else None)
      head_cells
  in
  (* Step through segments; the label-value set for set-references is the
     set of values at the label position across current partials (the
     forward-culled set — same definition as the engine's). *)
  let step (partials : partial list) vstep_idx (e : Ast.estep) (v : Ast.vstep)
      : partial list =
    let target_spec =
      match v.Ast.v_kind with
      | Ast.V_any -> `Any
      | Ast.V_seeded _ -> raise (Unsupported "seeded steps")
      | Ast.V_named n -> (
          match Hashtbl.find_opt labels (norm n) with
          | Some li when li.li_pos < vstep_idx ->
              if li.li_each then `Each li.li_pos
              else begin
                let set = Hashtbl.create 32 in
                List.iter
                  (fun partial ->
                    let arr = row_of partial vstep_idx in
                    Hashtbl.replace set arr.(li.li_pos) ())
                  partials;
                `Set (li.li_pos, set)
              end
          | _ -> (
              match Pack.vtype_index u n with
              | Some tidx -> `Type tidx
              | None -> raise (Unsupported (Printf.sprintf "unknown step %S" n))))
    in
    let out = ref [] in
    List.iter
      (fun partial ->
        let cur = List.hd partial in
        let arr = row_of partial vstep_idx in
        Array.iteri
          (fun eidx eset ->
            let name_ok =
              match e.Ast.e_kind with
              | Ast.E_named n -> norm n = norm (Eset.name eset)
              | Ast.E_any -> true
            in
            if name_ok then
              (* Scan every edge of the type: the baseline has no index. *)
              for eid = 0 to Eset.size eset - 1 do
                let src_t = Pack.vtype_index u (Eset.src_type eset) in
                let dst_t = Pack.vtype_index u (Eset.dst_type eset) in
                match (src_t, dst_t) with
                | Some st, Some dt ->
                    let scell = Pack.pack ~tidx:st ~id:(Eset.src eset eid) in
                    let dcell = Pack.pack ~tidx:dt ~id:(Eset.dst eset eid) in
                    let from_cell, to_cell =
                      match e.Ast.e_dir with
                      | Ast.Out -> (scell, dcell)
                      | Ast.In -> (dcell, scell)
                    in
                    if from_cell = cur then begin
                      let type_ok =
                        match target_spec with
                        | `Any -> true
                        | `Type t -> Pack.tidx to_cell = t
                        | `Each pos -> to_cell = arr.(pos)
                        | `Set (pos, set) ->
                            Hashtbl.mem set to_cell
                            && Pack.tidx to_cell = Pack.tidx arr.(pos)
                      in
                      if
                        type_ok
                        && edge_ok e ~step_idx:vstep_idx ~partial ~eidx ~eid
                        && vertex_ok v ~step_idx:vstep_idx ~partial
                             ~cell:to_cell
                      then out := (to_cell :: partial) :: !out
                    end
                | _ -> ()
              done)
          u.Pack.etypes)
      partials;
    register_label v vstep_idx;
    List.rev !out
  in
  (* Naive fixpoint for a regex segment. One complete body traversal of a
     cell set chains full-edge-scan expansions of each atom; [*] closes
     over rounds and keeps the start, [+] runs one round then closes,
     [{n}] runs exactly [n] rounds. Conditions inside the group cannot see
     label slots (same rule as the engines), so they compile with an empty
     slot lookup and evaluate against an empty row. *)
  let regex (partials : partial list) (body : (Ast.estep * Ast.vstep) list)
      (op : Ast.rx_op) : partial list =
    List.iter
      (fun ((e : Ast.estep), (v : Ast.vstep)) ->
        if e.Ast.e_label <> None || v.Ast.v_label <> None then
          raise (Unsupported "labels inside regexes");
        match v.Ast.v_kind with
        | Ast.V_seeded _ -> raise (Unsupported "seeded steps")
        | _ -> ())
      body;
    let expand_atom ((e : Ast.estep), (v : Ast.vstep))
        (cells : (int, unit) Hashtbl.t) =
      let target =
        match v.Ast.v_kind with
        | Ast.V_any -> None
        | Ast.V_named n -> (
            match Pack.vtype_index u n with
            | Some t -> Some t
            | None -> raise (Unsupported (Printf.sprintf "unknown step %S" n)))
        | Ast.V_seeded _ -> assert false
      in
      (* Per-landing-type vertex condition cache: [None] entry = compile
         failure on an unconstrained [ ] landing, which rejects that type
         (the engines behave the same way). *)
      let vcache : (int, Step_cond.t option) Hashtbl.t = Hashtbl.create 4 in
      let vertex_ok cell =
        match v.Ast.v_cond with
        | None -> true
        | Some cond -> (
            let tidx = Pack.tidx cell in
            let compiled =
              match Hashtbl.find_opt vcache tidx with
              | Some c -> c
              | None ->
                  let self_names =
                    match v.Ast.v_kind with Ast.V_named n -> [ n ] | _ -> []
                  in
                  let c =
                    try
                      Some
                        (Step_cond.compile_vertex ~params ~universe:u
                           ~slots:no_slots ~self_names
                           ~vset:u.Pack.vtypes.(tidx) cond)
                    with Compile_expr.Compile_error _ when target = None ->
                      None
                  in
                  Hashtbl.replace vcache tidx c;
                  c
            in
            match compiled with
            | None -> false
            | Some c ->
                Step_cond.eval_vertex c ~row:[||] ~vertex:(Pack.id cell))
      in
      let out = Hashtbl.create 16 in
      Array.iter
        (fun eset ->
          let name_ok =
            match e.Ast.e_kind with
            | Ast.E_named n -> norm n = norm (Eset.name eset)
            | Ast.E_any -> true
          in
          if name_ok then
            match
              ( Pack.vtype_index u (Eset.src_type eset),
                Pack.vtype_index u (Eset.dst_type eset) )
            with
            | Some st, Some dt ->
                let ec =
                  match e.Ast.e_cond with
                  | None -> None
                  | Some cond ->
                      Some
                        (Step_cond.compile_edge ~params ~universe:u
                           ~slots:no_slots
                           ~self_names:
                             (match e.Ast.e_kind with
                             | Ast.E_named n -> [ n ]
                             | Ast.E_any -> [])
                           ~eset cond)
                in
                for eid = 0 to Eset.size eset - 1 do
                  let scell = Pack.pack ~tidx:st ~id:(Eset.src eset eid) in
                  let dcell = Pack.pack ~tidx:dt ~id:(Eset.dst eset eid) in
                  let from_cell, to_cell =
                    match e.Ast.e_dir with
                    | Ast.Out -> (scell, dcell)
                    | Ast.In -> (dcell, scell)
                  in
                  if
                    Hashtbl.mem cells from_cell
                    && (match target with
                       | None -> true
                       | Some t -> Pack.tidx to_cell = t)
                    && (match ec with
                       | None -> true
                       | Some c -> Step_cond.eval_edge c ~row:[||] ~edge:eid)
                    && vertex_ok to_cell
                  then Hashtbl.replace out to_cell ()
                done
            | _ -> ())
        u.Pack.etypes;
      out
    in
    let round cells = List.fold_left (fun cur a -> expand_atom a cur) cells body in
    let singleton c =
      let h = Hashtbl.create 4 in
      Hashtbl.replace h c ();
      h
    in
    let closure_into reached frontier =
      (* BFS over the "one complete traversal" relation. *)
      let front = ref frontier in
      while Hashtbl.length !front > 0 do
        let next = round !front in
        let fresh = Hashtbl.create 16 in
        Hashtbl.iter
          (fun c () ->
            if not (Hashtbl.mem reached c) then begin
              Hashtbl.replace reached c ();
              Hashtbl.replace fresh c ()
            end)
          next;
        front := fresh
      done
    in
    let eval_from start =
      match op with
      | Ast.Rx_count n when n < 0 ->
          raise (Unsupported "negative repetition count")
      | Ast.Rx_count n ->
          let cur = ref (singleton start) in
          for _ = 1 to n do
            cur := round !cur
          done;
          !cur
      | Ast.Rx_star ->
          let reached = singleton start in
          closure_into reached (singleton start);
          reached
      | Ast.Rx_plus ->
          let first = round (singleton start) in
          let reached = Hashtbl.copy first in
          closure_into reached first;
          reached
    in
    let memo : (int, int list) Hashtbl.t = Hashtbl.create 16 in
    let out = ref [] in
    List.iter
      (fun partial ->
        let cur = List.hd partial in
        let ends =
          match Hashtbl.find_opt memo cur with
          | Some e -> e
          | None ->
              let set = eval_from cur in
              let e =
                Hashtbl.fold (fun c () acc -> c :: acc) set []
                |> List.sort compare
              in
              Hashtbl.replace memo cur e;
              e
        in
        List.iter (fun c -> out := (c :: partial) :: !out) ends)
      partials;
    List.rev !out
  in
  let final =
    List.fold_left
      (fun (partials, idx) seg ->
        match seg with
        | Ast.Seg_step (e, v) -> (step partials idx e v, idx + 1)
        | Ast.Seg_regex (body, op, _) -> (regex partials body op, idx + 1))
      (partials, 1) p.Ast.segments
    |> fst
  in
  List.map (fun partial -> Array.of_list (List.rev partial)) final
