(** Brute-force reference implementation of simple path queries.

    This is the baseline a CSR-indexed engine is measured against, and the
    oracle the optimized executor is property-tested against: no edge
    indices (adjacency by scanning the whole edge array), no planner, no
    projection/dedup, no parallelism. Supports named and [ ] steps in both
    directions, vertex/edge conditions, set/element-wise labels, and path
    regexes (evaluated as a naive fixpoint over full-edge-scan rounds) —
    the full single-path language minus subgraph seeds.

    Complexity is O(paths × edges) per step; use on small graphs only. *)

module Ast = Graql_lang.Ast
module Value = Graql_storage.Value

exception Unsupported of string

val run_path :
  db:Db.t ->
  params:(string -> Value.t option) ->
  Ast.path ->
  int array list
(** All match tuples, bag semantics. Each tuple holds the packed vertex
    cell of every vertex step, in lexical path order (edges contribute
    multiplicity but are not reported; a regex segment contributes one
    endpoint slot). Raises {!Unsupported} on seeded steps and on labels
    inside regex bodies. *)
