module Ast = Graql_lang.Ast
module Loc = Graql_lang.Loc
module Table = Graql_storage.Table
module Schema = Graql_storage.Schema
module Value = Graql_storage.Value
module Dtype = Graql_storage.Dtype
module Row_expr = Graql_relational.Row_expr
module Relop = Graql_relational.Relop
module Join = Graql_relational.Join
module Aggregate = Graql_relational.Aggregate
module Metrics = Graql_obs.Metrics
module Trace = Graql_obs.Trace
module Profile = Graql_obs.Profile
module Ledger = Graql_obs.Ledger

exception Table_error of Loc.t * string

let error loc fmt = Printf.ksprintf (fun msg -> raise (Table_error (loc, msg))) fmt
let norm = String.lowercase_ascii

(* Per-operator observation: output-row counters (query-determined, so
   invariant across domain counts), a latency histogram, a trace span,
   and a profile sample when EXPLAIN ANALYZE is collecting. *)
let h_op_us = Metrics.histogram "table.op_us"
let c_scan = Metrics.counter "table.scan_rows"
let c_filter = Metrics.counter "table.filter_rows"
let c_join = Metrics.counter "table.join_rows"
let c_aggregate = Metrics.counter "table.aggregate_rows"
let c_distinct = Metrics.counter "table.distinct_rows"
let c_sort = Metrics.counter "table.sort_rows"

let rows_counter = function
  | "scan" -> c_scan
  | "filter" -> c_filter
  | "join" -> c_join
  | "aggregate" -> c_aggregate
  | "distinct" -> c_distinct
  | "sort" -> c_sort
  | other -> Metrics.counter ("table." ^ other ^ "_rows")

let observed ?detail op f =
  let label = match detail with Some d -> op ^ ":" ^ d | None -> op in
  let sp =
    Trace.begin_span ~cat:"table" ~args:[ ("op", label) ] ("table." ^ op)
  in
  let t0 = Unix.gettimeofday () in
  let t = f () in
  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Trace.end_span sp;
  let rows = Table.nrows t in
  Metrics.add (rows_counter op) rows;
  (* Scanned-bytes estimate for the resource ledger; only while a
     ledger bracket is open (approx_bytes walks dictionary heaps). *)
  if op = "scan" && Ledger.capturing () then
    Ledger.note_scan_bytes (Table.approx_bytes t);
  Metrics.observe h_op_us (ms *. 1000.);
  (match Profile.current () with
  | Some c -> Profile.note_op c ~label ~rows ~ms
  | None -> ());
  t

(* A source relation with the qualifiers it answers to and its column
   offset in the working (possibly joined) table. *)
type src = { names : string list; table : Table.t; base : int }

let resolve_col srcs ~qual ~attr loc =
  match qual with
  | Some q -> (
      match List.find_opt (fun s -> List.mem (norm q) s.names) srcs with
      | Some s -> (
          match Schema.find (Table.schema s.table) attr with
          | Some i -> s.base + i
          | None -> error loc "table %s has no column %S" (List.hd s.names) attr)
      | None -> (
          (* Flattened path-result tables name columns "Step.attr"
             (Fig. 13); accept the dotted spelling as a plain column. *)
          let dotted = q ^ "." ^ attr in
          let hits =
            List.filter_map
              (fun s ->
                Option.map
                  (fun i -> s.base + i)
                  (Schema.find (Table.schema s.table) dotted))
              srcs
          in
          match hits with
          | [ i ] -> i
          | _ -> error loc "unknown qualifier %S" q))
  | None -> (
      let hits =
        List.filter_map
          (fun s ->
            Option.map (fun i -> s.base + i) (Schema.find (Table.schema s.table) attr))
          srcs
      in
      match hits with
      | [ i ] -> i
      | [] -> error loc "unknown column %S" attr
      | _ -> error loc "ambiguous column %S (qualify it)" attr)

let binder_of srcs working : Compile_expr.binder =
 fun ~qual ~attr loc ->
  match resolve_col srcs ~qual ~attr loc with
  | i ->
      {
        Compile_expr.cr_index = i;
        cr_dtype = Schema.col_dtype (Table.schema working) i;
      }
  | exception Table_error (l, m) -> raise (Compile_expr.Compile_error (l, m))

(* Build the working table: single source, or left-deep equi-join driven by
   the cross-table equality conjuncts of the where clause. *)
let build_working ~db ~params (st : Ast.select_table) =
  let loc = st.Ast.st_loc in
  let lookup name =
    match Db.find_table db name with
    | Some t -> t
    | None -> error loc "no such table %S" name
  in
  match st.Ast.st_from with
  | Ast.From_table (name, alias) ->
      let table = observed "scan" ~detail:(norm name) (fun () -> lookup name) in
      let names =
        norm name :: (match alias with Some a -> [ norm a ] | None -> [])
      in
      let srcs = [ { names; table; base = 0 } ] in
      let filtered =
        match st.Ast.st_where with
        | None -> table
        | Some w ->
            let pred =
              try Compile_expr.compile ~params (binder_of srcs table) w
              with Compile_expr.Compile_error (l, m) -> error l "%s" m
            in
            observed "filter" (fun () ->
                Relop.select ?pool:(Db.pool db) ~name table pred)
      in
      (filtered, [ { names; table = filtered; base = 0 } ])
  | Ast.From_join (sources, where) ->
      let rels =
        List.map
          (fun (name, alias) ->
            let table = observed "scan" ~detail:(norm name) (fun () -> lookup name) in
            let names =
              norm name :: (match alias with Some a -> [ norm a ] | None -> [])
            in
            { Table_plan.r_names = names; r_table = table })
          sources
      in
      let conjs =
        match where with Some w -> Compile_expr.conjuncts w | None -> []
      in
      (* Statistics-driven plan: which conjuncts push below the joins,
         and the left-deep join order by estimated cardinality. *)
      let plan =
        try Table_plan.plan ~params:(fun p -> params p) ~loc rels conjs
        with Table_plan.Plan_error (l, m) -> error l "%s" m
      in
      let compile_against srcs working e =
        try Compile_expr.compile ~params (binder_of srcs working) e
        with Compile_expr.Compile_error (l, m) -> error l "%s" m
      in
      let conj_pred srcs working = function
        | [] -> None
        | conjs ->
            Some
              (List.fold_left
                 (fun acc conj ->
                   let e = compile_against srcs working conj in
                   match acc with
                   | None -> Some e
                   | Some a -> Some (Row_expr.And (a, e)))
                 None conjs
              |> Option.get)
      in
      (* Scan-level pushdown: filter each relation before it joins. *)
      let filtered_scans =
        List.map
          (fun (s : Table_plan.scan_step) ->
            let r = s.Table_plan.sc_rel in
            let table = r.Table_plan.r_table in
            match s.Table_plan.sc_pushed with
            | [] -> (r, table)
            | pushed ->
                let src1 = [ { names = r.Table_plan.r_names; table; base = 0 } ] in
                let pred = Option.get (conj_pred src1 table pushed) in
                let t =
                  observed "filter" ~detail:(Table_plan.rel_key r) (fun () ->
                      Relop.select ?pool:(Db.pool db) table pred)
                in
                (r, t))
          plan.Table_plan.tp_scans
      in
      let table_of r =
        snd
          (List.find
             (fun (r', _) -> Table_plan.rel_id r' = Table_plan.rel_id r)
             filtered_scans)
      in
      (match plan.Table_plan.tp_scans with
      | [] -> error loc "empty from clause"
      | first :: rest ->
          let first_rel = first.Table_plan.sc_rel in
          let srcs =
            ref
              [
                {
                  names = first_rel.Table_plan.r_names;
                  table = table_of first_rel;
                  base = 0;
                };
              ]
          in
          let working = ref (table_of first_rel) in
          let joined = ref [ Table_plan.rel_id first_rel ] in
          List.iter2
            (fun (s : Table_plan.scan_step) (_ : Table_plan.join_step) ->
              let r = s.Table_plan.sc_rel in
              let right = table_of r in
              let atoms =
                Table_plan.atoms_for plan ~incoming:(Table_plan.rel_id r)
                  ~joined:!joined
              in
              let on =
                List.map
                  (fun (jrel, jattr, jloc, iattr, iloc) ->
                    let src =
                      List.find
                        (fun sr -> String.concat "/" sr.names = jrel)
                        !srcs
                    in
                    let left_col =
                      match Schema.find (Table.schema src.table) jattr with
                      | Some i -> src.base + i
                      | None ->
                          error jloc "table %s has no column %S"
                            (List.hd src.names) jattr
                    in
                    let right_col =
                      match Schema.find (Table.schema right) iattr with
                      | Some i -> i
                      | None ->
                          error iloc "table %s has no column %S"
                            (Table_plan.rel_key r) iattr
                    in
                    (left_col, right_col))
                  atoms
              in
              let base = Table.arity !working in
              working :=
                observed "join" ~detail:(Table_plan.rel_key r) (fun () ->
                    Join.hash_join ?pool:(Db.pool db) ~name:"join"
                      ~left:!working ~right ~on ());
              srcs :=
                !srcs @ [ { names = r.Table_plan.r_names; table = right; base } ];
              joined := Table_plan.rel_id r :: !joined)
            rest plan.Table_plan.tp_joins;
          let srcs = !srcs in
          let filtered =
            match conj_pred srcs !working plan.Table_plan.tp_residual with
            | Some pred ->
                observed "filter" (fun () ->
                    Relop.select ?pool:(Db.pool db) !working pred)
            | None -> !working
          in
          (filtered, srcs))

(* Output column name for a target. *)
let target_name ?(idx = 0) = function
  | Ast.T_star -> Printf.sprintf "col%d" idx
  | Ast.T_expr (e, alias) -> (
      match (alias, e) with
      | Some a, _ -> a
      | None, Ast.E_attr (_, a, _) -> a
      | None, Ast.E_call (f, _, _) -> f
      | None, _ -> Printf.sprintf "col%d" idx)

let is_agg_call = function
  | Ast.T_expr (Ast.E_call _, _) -> true
  | Ast.T_expr _ | Ast.T_star -> false

let exec ~db ~params ~name (st : Ast.select_table) =
  let loc = st.Ast.st_loc in
  let working, srcs = build_working ~db ~params st in
  let binder = binder_of srcs working in
  let compile e =
    try Compile_expr.compile ~params binder e
    with Compile_expr.Compile_error (l, m) -> error l "%s" m
  in
  let grouped = st.Ast.st_group_by <> [] in
  let has_aggs = List.exists is_agg_call st.Ast.st_targets in
  let working_schema = Table.schema working in
  let rec dtype_of_expr e =
    match e with
    | Ast.E_attr (q, a, l) ->
        Schema.col_dtype working_schema (resolve_col srcs ~qual:q ~attr:a l)
    | Ast.E_lit (Ast.L_int _, _) -> Dtype.Int
    | Ast.E_lit (Ast.L_float _, _) -> Dtype.Float
    | Ast.E_lit (Ast.L_string _, _) -> Dtype.Varchar 255
    | Ast.E_lit (Ast.L_bool _, _) -> Dtype.Bool
    | Ast.E_lit (Ast.L_null, _) -> Dtype.Varchar 255
    | Ast.E_binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), a, b, _)
      -> (
        match (dtype_of_expr a, dtype_of_expr b) with
        | Dtype.Int, Dtype.Int -> Dtype.Int
        | Dtype.Date, Dtype.Int | Dtype.Int, Dtype.Date -> Dtype.Date
        | Dtype.Varchar _, Dtype.Varchar _ -> Dtype.Varchar 255
        | _ -> Dtype.Float)
    | Ast.E_binop
        ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.And
         | Ast.Or | Ast.Like), _, _, _)
    | Ast.E_unop (Ast.Not, _, _)
    | Ast.E_is_null _ ->
        Dtype.Bool
    | Ast.E_unop (Ast.Neg, a, _) -> dtype_of_expr a
    | Ast.E_param _ | Ast.E_call _ -> Dtype.Float
  in
  let projected =
    if grouped || has_aggs then begin
      (* Stage 1: working columns = group keys ++ aggregate arguments. *)
      let key_specs =
        List.map
          (fun (q, c) ->
            let i = resolve_col srcs ~qual:q ~attr:c loc in
            (c, Schema.col_dtype working_schema i, Row_expr.Col i))
          st.Ast.st_group_by
      in
      let agg_targets =
        List.filter_map
          (function
            | Ast.T_expr (Ast.E_call (f, args, l), alias) ->
                Some (f, args, l, alias)
            | _ -> None)
          st.Ast.st_targets
      in
      let agg_arg_specs =
        List.mapi
          (fun i (f, args, l, _) ->
            match args with
            | [ Ast.A_star ] ->
                if f <> "count" then error l "%s(*) is not valid" f;
                None
            | [ Ast.A_expr e ] ->
                Some (Printf.sprintf "__agg%d" i, dtype_of_expr e, compile e)
            | _ -> error l "aggregate %s takes exactly one argument" f)
          agg_targets
      in
      let stage1_specs = key_specs @ List.filter_map Fun.id agg_arg_specs in
      let stage1 =
        Relop.project_named ~name:"stage1" working stage1_specs
      in
      let nkeys = List.length key_specs in
      (* Aggregate column index per agg target within stage1. *)
      let _, agg_descrs =
        List.fold_left2
          (fun (next, acc) (f, _, l, alias) arg ->
            let agg =
              match (f, arg) with
              | "count", None -> Aggregate.Count_star
              | "count", Some _ -> Aggregate.Count next
              | "sum", Some _ -> Aggregate.Sum next
              | "avg", Some _ -> Aggregate.Avg next
              | "min", Some _ -> Aggregate.Min next
              | "max", Some _ -> Aggregate.Max next
              | _ -> error l "unknown aggregate %S" f
            in
            let cname = match alias with Some a -> a | None -> f in
            let next = if arg = None then next else next + 1 in
            (next, acc @ [ (agg, cname) ]))
          (nkeys, []) agg_targets
          agg_arg_specs
      in
      let aggregated =
        observed "aggregate" (fun () ->
            Aggregate.group_by ?pool:(Db.pool db) ~name:"grouped" stage1
              ~keys:(List.init nkeys Fun.id)
              ~aggs:agg_descrs)
      in
      (* Stage 2: order output columns per the select-target order. *)
      let gschema = Table.schema aggregated in
      let out_cols =
        List.map
          (fun t ->
            match t with
            | Ast.T_star -> error loc "select * cannot be combined with group by"
            | Ast.T_expr (Ast.E_call _, _) as t -> (
                let cname = target_name t in
                match Schema.find gschema cname with
                | Some i -> i
                | None -> error loc "internal: lost aggregate column %s" cname)
            | Ast.T_expr (Ast.E_attr (_, a, l), alias) -> (
                let cname = match alias with Some x -> x | None -> a in
                ignore cname;
                match Schema.find gschema a with
                | Some i -> i
                | None -> error l "column %S must appear in group by" a)
            | Ast.T_expr (e, _) ->
                error (Ast.expr_loc e)
                  "grouped select targets must be grouping columns or \
                   aggregates")
          st.Ast.st_targets
      in
      (* Renaming pass to apply aliases. *)
      let out_specs =
        List.map2
          (fun t i ->
            ( target_name t,
              Schema.col_dtype gschema i,
              Row_expr.Col i ))
          st.Ast.st_targets out_cols
      in
      Relop.project_named ~name aggregated out_specs
    end
    else if List.exists (fun t -> t = Ast.T_star) st.Ast.st_targets then
      Table.rename working name
    else begin
      let specs =
        List.mapi
          (fun i t ->
            match t with
            | Ast.T_star -> assert false
            | Ast.T_expr (e, _) ->
                (target_name ~idx:i t, dtype_of_expr e, compile e))
          st.Ast.st_targets
      in
      Relop.project_named ~name working specs
    end
  in
  let projected =
    if st.Ast.st_distinct then
      observed "distinct" (fun () -> Relop.distinct ~name projected)
    else projected
  in
  (* Order keys resolve against the output schema first (aliases, grouped
     columns); an ungrouped, non-distinct select may also order by source
     columns or expressions not in the output — those are carried as
     hidden sort columns and projected away afterwards. *)
  let out_schema = Table.schema projected in
  let find_in_output e =
    match e with
    | Ast.E_attr (None, a, _) -> Schema.find out_schema a
    | Ast.E_attr (Some q, a, _) -> (
        match Schema.find out_schema (q ^ "." ^ a) with
        | Some i -> Some i
        | None -> Schema.find out_schema a)
    | _ -> None
  in
  let may_hide = (not grouped) && (not has_aggs) && not st.Ast.st_distinct in
  let resolutions =
    List.map
      (fun (e, dir) ->
        let dir = match dir with Ast.Asc -> Relop.Asc | Ast.Desc -> Relop.Desc in
        match find_in_output e with
        | Some i -> (`Out i, dir)
        | None ->
            if may_hide then (`Hidden (dtype_of_expr e, compile e), dir)
            else
              error (Ast.expr_loc e)
                "order by: not an output column (grouped/distinct selects \
                 sort by output columns only)")
      st.Ast.st_order_by
  in
  let hidden =
    List.filter_map
      (function `Hidden (t, e), _ -> Some (t, e) | `Out _, _ -> None)
      resolutions
  in
  let projected, order_keys, visible =
    if hidden = [] then
      ( projected,
        List.map
          (fun (r, d) ->
            match r with `Out i -> (i, d) | `Hidden _ -> assert false)
          resolutions,
        None )
    else begin
      (* Rebuild the projection with hidden sort columns appended. The
         visible columns must be re-evaluated against the same working
         rows, so recompute their specs. *)
      let visible_specs =
        if List.exists (fun t -> t = Ast.T_star) st.Ast.st_targets then
          List.init (Table.arity working) (fun i ->
              ( Schema.col_name working_schema i,
                Schema.col_dtype working_schema i,
                Row_expr.Col i ))
        else
          List.mapi
            (fun i t ->
              match t with
              | Ast.T_star -> assert false
              | Ast.T_expr (e, _) ->
                  (target_name ~idx:i t, dtype_of_expr e, compile e))
            st.Ast.st_targets
      in
      let nvisible = List.length visible_specs in
      let hidden_specs =
        List.mapi
          (fun i (t, e) -> (Printf.sprintf "__ord%d" i, t, e))
          hidden
      in
      let widened =
        Relop.project_named ~name working (visible_specs @ hidden_specs)
      in
      let next_hidden = ref (nvisible - 1) in
      let keys =
        List.map
          (fun (r, d) ->
            match r with
            | `Out i -> (i, d)
            | `Hidden _ ->
                incr next_hidden;
                (!next_hidden, d))
          resolutions
      in
      (widened, keys, Some nvisible)
    end
  in
  let sorted =
    match (st.Ast.st_top, order_keys) with
    | None, [] -> projected
    | top, keys ->
        observed "sort" (fun () ->
            match (top, keys) with
            | Some n, (_ :: _ as keys) -> Relop.top_n ~name projected ~n ~keys
            | Some n, [] -> Relop.limit ~name projected n
            | None, keys -> Relop.order_by ~name projected keys)
  in
  let sorted =
    match visible with
    | Some nvisible -> Relop.project ~name sorted (List.init nvisible Fun.id)
    | None -> sorted
  in
  Table.rename sorted name
