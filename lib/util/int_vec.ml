type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () =
  { data = Array.make (max capacity 1) 0; len = 0 }

let length t = t.len

let[@inline never] grow t n =
  let cap = ref (Array.length t.data) in
  while !cap < n do
    cap := !cap * 2
  done;
  let data = Array.make !cap 0 in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

(* The hot loop of every batch kernel: keep the in-capacity path small
   enough to inline at the call site (one compare, one store). *)
let[@inline] push t x =
  if t.len = Array.length t.data then grow t (t.len + 1);
  Array.unsafe_set t.data t.len x;
  t.len <- t.len + 1

let check t i = if i < 0 || i >= t.len then invalid_arg "Int_vec: out of bounds"

let get t i = check t i; Array.unsafe_get t.data i
let set t i x = check t i; Array.unsafe_set t.data i x
let clear t = t.len <- 0
let to_array t = Array.sub t.data 0 t.len
let of_array a = { data = Array.copy a; len = Array.length a }

let iter f t =
  for i = 0 to t.len - 1 do f (Array.unsafe_get t.data i) done

let iteri f t =
  for i = 0 to t.len - 1 do f i (Array.unsafe_get t.data i) done

let fold f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let append dst src = iter (push dst) src

let blit_into src dst pos = Array.blit src.data 0 dst pos src.len

let unsafe_get t i = Array.unsafe_get t.data i

let sort_unique t =
  let a = to_array t in
  Array.sort compare a;
  let out = create ~capacity:(Array.length a) () in
  Array.iteri
    (fun i x -> if i = 0 || x <> a.(i - 1) then push out x)
    a;
  out
