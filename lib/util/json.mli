(** A minimal JSON reader/writer — enough to parse benchmark baselines
    and validate the JSON the system emits (query log, slow log, Chrome
    traces) without an external dependency.

    The parser accepts the RFC 8259 grammar with two deliberate
    simplifications: numbers are read with [float_of_string] (so the
    full OCaml float syntax is tolerated) and [\uXXXX] escapes outside
    the ASCII range decode to UTF-8 without validating surrogate
    pairing. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error. *)

val parse_exn : string -> t
(** Raises [Failure] with the parse error. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val to_float : t -> float option
val to_int : t -> int option
val to_string_opt : t -> string option
val to_list : t -> t list option

val escape_string : string -> string
(** The body of a JSON string literal (no surrounding quotes): escapes
    ['"'], ['\\'] and control characters. *)

val quote : string -> string
(** [escape_string] with surrounding quotes. *)
