(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven. Used to
    frame write-ahead-log records so a torn or corrupted record is
    detected before replay. Matches the checksum produced by zlib's
    [crc32] / POSIX [cksum -o 3] on the same bytes. *)

val string : ?crc:int32 -> string -> int32
(** [string s] is the CRC-32 of all bytes of [s]. [?crc] continues a
    running checksum (initial value [0l]), so
    [string ~crc:(string a) b = string (a ^ b)]. *)

val bytes : ?crc:int32 -> bytes -> int32

val sub : ?crc:int32 -> bytes -> pos:int -> len:int -> int32
(** Checksum of [len] bytes of a buffer starting at [pos]. Raises
    [Invalid_argument] when the range is out of bounds. *)
