(** String interning pool: maps strings to dense small ints and back.
    Vertex keys and dictionary-encoded string columns use these ids so hot
    joins and traversals compare ints, never strings. *)

type t

val create : ?expected:int -> unit -> t
(** [expected] is a capacity hint (distinct strings); ingest passes the
    row count so large Varchar columns do not rehash-and-double their way
    up from 16 slots. *)

val reserve : t -> int -> unit
(** Ensure capacity for [n] distinct strings: grows the reverse array and
    rebuilds the hash table once at the target size. No-op if already big
    enough. *)

val intern : t -> string -> int
(** Stable id for the string, assigned densely from 0 in first-seen order. *)

val find_opt : t -> string -> int option
(** Id if already interned, without adding. *)

val lookup : t -> int -> string
(** Inverse of {!intern}. Raises [Invalid_argument] on unknown id. *)

val size : t -> int
