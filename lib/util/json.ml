type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st fmt =
  Printf.ksprintf
    (fun msg ->
      raise (Parse_error (Printf.sprintf "at byte %d: %s" st.pos msg)))
    fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail st "expected %C, found %C" c d
  | None -> fail st "expected %C, found end of input" c

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st "invalid literal"

(* Encode a code point as UTF-8 (no surrogate-pair recombination). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.src then
                  fail st "truncated \\u escape";
                let hex = String.sub st.src st.pos 4 in
                st.pos <- st.pos + 4;
                let cp =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some cp -> cp
                  | None -> fail st "bad \\u escape %S" hex
                in
                add_utf8 buf cp
            | c -> fail st "bad escape '\\%c'" c);
            go ())
    | Some c when Char.code c < 0x20 -> fail st "raw control character in string"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek st with Some c when is_num_char c -> true | _ -> false do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> fail st "bad number %S" s

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (key, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ()
          | Some '}' -> advance st
          | _ -> fail st "expected ',' or '}' in object"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements ()
          | Some ']' -> advance st
          | _ -> fail st "expected ',' or ']' in array"
        in
        elements ();
        Arr (List.rev !items)
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st "unexpected character %C" c

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at byte %d" st.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> failwith ("Json.parse: " ^ msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None

let escape_string s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let quote s = "\"" ^ escape_string s ^ "\""
