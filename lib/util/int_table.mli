(** Open-addressed hash multimap from int keys to int values.

    The workhorse index behind the partitioned hash join: one table per
    radix partition, built once, probed read-only (and therefore safely)
    from many domains. Values added under the same key are replayed by
    {!iter_matches} in insertion order, which is what makes join output
    independent of the probe schedule. *)

type t

val create : ?hash_shift:int -> expected:int -> unit -> t
(** [create ~expected ()] pre-sizes for [expected] entries at load factor
    <= 1/2 (the table still grows if exceeded). [hash_shift] discards that
    many low hash bits before slot indexing — pass the partition bit count
    so slot placement stays uniform within a radix partition. *)

val add : t -> int -> int -> unit
(** [add t key v] appends [v] to [key]'s chain. *)

val iter_matches : t -> int -> (int -> unit) -> unit
(** Apply to every value bound to the key, in insertion order. *)

val first_match : t -> int -> int
(** Head entry index of the key's chain, or -1. With {!entry_value} and
    {!next_entry} this is the closure-free probe loop the batch join
    kernels use:
    {[ let e = ref (first_match t k) in
       while !e >= 0 do ... entry_value t !e ...; e := next_entry t !e done ]} *)

val entry_value : t -> int -> int
(** Value stored at an entry index returned by {!first_match}/{!next_entry}. *)

val next_entry : t -> int -> int
(** Next entry in the same key's chain, or -1. *)

val mem : t -> int -> bool
val length : t -> int

val has_dups : t -> bool
(** Whether any key has more than one entry. A join build side without
    duplicates guarantees at most one match per probe row, which lets the
    probe write into pre-sized output arrays instead of growing vectors. *)

val mix : int -> int
(** The avalanche hash used internally; exposed so callers can derive
    radix partition indices from the same bit stream. *)
