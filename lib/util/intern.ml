type t = {
  mutable table : (string, int) Hashtbl.t;
  mutable rev : string array;
  mutable len : int;
}

let create ?(expected = 16) () =
  let expected = max 16 expected in
  { table = Hashtbl.create expected; rev = Array.make expected ""; len = 0 }

(* Grow both directions of the mapping to hold [n] strings without
   incremental rehash-and-double churn. The reverse array grows by
   blitting; the hash table is rebuilt once at the target capacity
   (OCaml's Hashtbl cannot be resized in place). *)
let reserve t n =
  if n > Array.length t.rev then begin
    let rev = Array.make n "" in
    Array.blit t.rev 0 rev 0 t.len;
    t.rev <- rev;
    let table = Hashtbl.create n in
    for id = 0 to t.len - 1 do
      Hashtbl.add table t.rev.(id) id
    done;
    t.table <- table
  end

let intern t s =
  match Hashtbl.find_opt t.table s with
  | Some id -> id
  | None ->
      let id = t.len in
      if id >= Array.length t.rev then begin
        let rev = Array.make (2 * Array.length t.rev) "" in
        Array.blit t.rev 0 rev 0 t.len;
        t.rev <- rev
      end;
      t.rev.(id) <- s;
      t.len <- t.len + 1;
      Hashtbl.add t.table s id;
      id

let find_opt t s = Hashtbl.find_opt t.table s

let lookup t id =
  if id < 0 || id >= t.len then invalid_arg "Intern.lookup";
  t.rev.(id)

let size t = t.len
