(* CRC-32 (IEEE), reflected, table-driven: one 256-entry table computed at
   module init. The inner loop works on [int] (the table entries fit in 32
   bits) and only converts to [int32] at the boundary, keeping the hot
   path allocation-free on 64-bit platforms. *)

let poly = 0xEDB88320

let table =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      c := if !c land 1 <> 0 then poly lxor (!c lsr 1) else !c lsr 1
    done;
    t.(n) <- !c
  done;
  t

let mask32 = 0xFFFFFFFF

let sub_int ~crc buf ~pos ~len =
  let c = ref (crc lxor mask32) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get buf i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor mask32

let of_int32 c = Int32.to_int c land mask32
let to_int32 c = Int32.of_int c

let sub ?(crc = 0l) buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc32.sub";
  to_int32 (sub_int ~crc:(of_int32 crc) buf ~pos ~len)

let bytes ?(crc = 0l) buf =
  to_int32 (sub_int ~crc:(of_int32 crc) buf ~pos:0 ~len:(Bytes.length buf))

let string ?crc s = bytes ?crc (Bytes.unsafe_of_string s)
