(* Open-addressed hash multimap from int keys to int values. Entries for
   one key form a chain in insertion order, so probes replay build-side
   row order exactly — the property the join layer depends on for
   deterministic output. *)

type t = {
  shift : int;
  mutable mask : int; (* slot count - 1, power of two *)
  mutable slots : int array;
      (* interleaved pairs: [2s] = key, [2s+1] = head entry index or -1.
         Key and head share a cache line, so a probe costs one miss, not
         two. *)
  mutable tails : int array; (* slot -> tail entry index (valid if head >= 0) *)
  mutable ekey : int array; (* entry -> key *)
  mutable eval : int array; (* entry -> value *)
  mutable enext : int array; (* entry -> next entry with same key, or -1 *)
  mutable n : int; (* number of entries *)
  mutable dups : bool; (* some key has more than one entry *)
}

(* 64-bit avalanche mix (splitmix-style, constants chosen to fit OCaml's
   63-bit int). Used both for partition selection (low bits) and slot
   indexing (bits above [shift]), so correlated keys spread evenly. *)
let[@inline] mix x =
  let x = x lxor (x lsr 33) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 29) in
  let x = x * 0x3C79AC492BA7B653 in
  x lxor (x lsr 32)

let next_pow2 n =
  let c = ref 1 in
  while !c < n do
    c := !c * 2
  done;
  !c

let create ?(hash_shift = 0) ~expected () =
  let cap = next_pow2 (max 8 (2 * expected)) in
  let entries = max 8 expected in
  {
    shift = hash_shift;
    mask = cap - 1;
    slots = Array.make (2 * cap) (-1);
    tails = Array.make cap 0;
    ekey = Array.make entries 0;
    eval = Array.make entries 0;
    enext = Array.make entries 0;
    n = 0;
    dups = false;
  }

let length t = t.n

(* Index of the slot holding [key], or the empty slot where it belongs. *)
let[@inline] probe t key =
  let mask = t.mask in
  let s = ref ((mix key lsr t.shift) land mask) in
  let continue = ref true in
  while !continue do
    let base = 2 * !s in
    if
      Array.unsafe_get t.slots (base + 1) < 0
      || Array.unsafe_get t.slots base = key
    then continue := false
    else s := (!s + 1) land mask
  done;
  !s

let insert_entry t key e =
  let s = probe t key in
  let base = 2 * s in
  if t.slots.(base + 1) < 0 then begin
    t.slots.(base) <- key;
    t.slots.(base + 1) <- e;
    t.tails.(s) <- e
  end
  else begin
    (* [probe] only stops on a matching key, so an occupied slot means a
       second entry for the same key — including during [rehash], which
       re-forms exactly the original chains. *)
    t.dups <- true;
    t.enext.(t.tails.(s)) <- e;
    t.tails.(s) <- e
  end

let rehash t =
  let cap = 2 * (t.mask + 1) in
  t.mask <- cap - 1;
  t.slots <- Array.make (2 * cap) (-1);
  t.tails <- Array.make cap 0;
  Array.fill t.enext 0 t.n (-1);
  (* Re-inserting in entry order rebuilds every chain in insertion order. *)
  for e = 0 to t.n - 1 do
    insert_entry t t.ekey.(e) e
  done

let grow_entries t =
  let cap = 2 * Array.length t.ekey in
  let widen a = Array.append a (Array.make (cap - Array.length a) 0) in
  t.ekey <- widen t.ekey;
  t.eval <- widen t.eval;
  t.enext <- widen t.enext

let[@inline] add t key v =
  if t.n = Array.length t.ekey then grow_entries t;
  if 2 * t.n >= t.mask + 1 then rehash t;
  let e = t.n in
  t.ekey.(e) <- key;
  t.eval.(e) <- v;
  t.enext.(e) <- -1;
  t.n <- e + 1;
  insert_entry t key e

(* Cursor API: the batch join probe walks chains without a callback
   closure. [first_match] returns the head entry for the key (-1 if
   absent); [entry_value]/[next_entry] read and advance. *)
let[@inline] first_match t key = t.slots.((2 * probe t key) + 1)
let[@inline] entry_value t e = Array.unsafe_get t.eval e
let[@inline] next_entry t e = Array.unsafe_get t.enext e

let iter_matches t key f =
  let e = ref t.slots.((2 * probe t key) + 1) in
  while !e >= 0 do
    f (Array.unsafe_get t.eval !e);
    e := Array.unsafe_get t.enext !e
  done

let[@inline] mem t key = t.slots.((2 * probe t key) + 1) >= 0
let has_dups t = t.dups
