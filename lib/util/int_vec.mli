(** Growable arrays of unboxed ints. The workhorse buffer for row ids,
    vertex ids and CSR construction. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> int -> unit
val get : t -> int -> int
val set : t -> int -> int -> unit
val clear : t -> unit
(** Reset length to 0, keeping capacity. *)

val to_array : t -> int array
(** Fresh array of exactly [length t] elements. *)

val of_array : int array -> t
val iter : (int -> unit) -> t -> unit
val iteri : (int -> int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val append : t -> t -> unit
(** [append dst src] pushes all of [src] onto [dst]. *)

val blit_into : t -> int array -> int -> unit
(** [blit_into src dst pos] copies [src]'s contents into [dst] starting at
    [pos]. Used to concatenate per-task accumulators into one array. *)

val unsafe_get : t -> int -> int
(** No bounds check; caller guarantees [0 <= i < length t]. *)

val sort_unique : t -> t
(** Fresh vector with sorted, deduplicated contents. *)
