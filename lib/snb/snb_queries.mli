(** The SNB-style deep-traversal query set: script texts for end-to-end
    runs (regex results captured as subgraphs — regex endpoints are
    anonymous steps, so table output cannot name them) and AST builders
    for harnesses that drive {!Graql_engine.Path_exec.run_multipath}
    directly and read endpoint columns. *)

module Ast = Graql_lang.Ast

val q_knows_plus : string
val q_knows_star_posts : string
val q_fof_posts : string
val q_knows_knows_plus : string
val q_reply_chain4 : string
val q_thread_root : string
val q_moderator_reach : string

val all : (string * string) list
(** [(name, script)] for every query above. Parameters: [%Person1%],
    [%Comment1%], [%Forum1%]. *)

val path_knows_plus : person:string -> Ast.path
(** [( --knows--> Person )+] from one person. *)

val path_knows_star : person:string -> Ast.path
(** [( --knows--> Person )*] from one person. *)

val path_knows_knows_plus : person:string -> Ast.path
(** [( --knows--> Person --knows--> Person )+]: even-distance closure,
    the two-atom body where closure enumeration is combinatorial. *)

val path_reply_chain : comment:string -> n:int -> Ast.path
(** [( --replyOfComment--> Comment ){n}]. *)

val path_thread_root : comment:string -> Ast.path
(** [( --replyOfComment--> Comment )* --replyOfPost--> Post]. *)
