(** DDL for the SNB-style deep-traversal scenario: People with a skewed
    [knows] network, Forums moderated by people and holding Posts, deep
    Comment reply chains ([replyOfComment] is a same-type edge), and
    person-to-post [likes]. Every entity carries a [creationDate]. *)

val tables_ddl : string
val vertices_ddl : string
val edges_ddl : string
val full_ddl : string

val ingest_script : (string * string) list -> string
(** [(table, filename)] pairs to ingest statements, in order. *)
