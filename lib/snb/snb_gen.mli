(** Deterministic SNB-style data generator: people with Zipf-skewed
    [knows] degrees (low ids are hubs), forums with posts, deep comment
    reply chains (70% of comments extend a recent chain), and skewed
    likes. Everything is a pure function of [seed] and [scale]; scale 1 ≈
    40 people, 120 posts, 360 comments. *)

type counts = {
  n_people : int;
  n_forums : int;
  n_posts : int;
  n_comments : int;
  n_knows : int;  (** 0: skewed and deduped, count fixed by generation *)
  n_likes : int;
}

val counts : scale:int -> counts
val countries : string array

val csv_files : ?seed:int -> scale:int -> unit -> (string * string) list
(** [(filename, csv document)] per table, filenames [<table>.csv]
    lowercased. *)

val table_files : (string * string) list
(** [(table name, filename)] pairs in ingest order. *)

val loader : ?seed:int -> scale:int -> unit -> string -> string

val ingest_all : ?seed:int -> scale:int -> Graql_gems.Session.t -> unit
(** Install the SNB schema and ingest a generated dataset through the
    normal GraQL pipeline. *)
