module Rng = Graql_util.Rng
module Date = Graql_storage.Date

type counts = {
  n_people : int;
  n_forums : int;
  n_posts : int;
  n_comments : int;
  n_knows : int;
  n_likes : int;
}

let counts ~scale =
  let scale = max 1 scale in
  let p = 40 * scale in
  {
    n_people = p;
    n_forums = max 4 (p / 10);
    n_posts = p * 3;
    n_comments = p * 9;
    n_knows = 0 (* filled by generation: skewed and deduped *);
    n_likes = p * 6;
  }

let countries =
  [| "US"; "IT"; "FR"; "DE"; "CN"; "CA"; "JP"; "UK"; "ES"; "RU" |]

let first_names =
  [|
    "ada"; "bela"; "carl"; "dana"; "emil"; "fehi"; "gori"; "hana"; "ivan";
    "jun"; "kofi"; "lena"; "mira"; "nils"; "otto"; "pia";
  |]

let last_names =
  [|
    "stone"; "reed"; "vala"; "wolfe"; "iker"; "moss"; "nagy"; "ochoa";
    "patel"; "quist"; "roca"; "sato"; "toma"; "unger"; "voss"; "wirth";
  |]

let d2010 = Date.of_ymd 2010 1 1
let d2012_end = Date.of_ymd 2012 12 31

let date_between rng lo hi = Date.to_string (Rng.int_in rng lo hi)

let doc header rows =
  let buf = Buffer.create (1024 * (1 + List.length rows)) in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun fields ->
      Buffer.add_string buf (String.concat "," fields);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let csv_files ?(seed = 42) ~scale () =
  let c = counts ~scale in
  let rng = Rng.make seed in
  let r_people = Rng.split rng in
  let r_knows = Rng.split rng in
  let r_forums = Rng.split rng in
  let r_posts = Rng.split rng in
  let r_comments = Rng.split rng in
  let r_likes = Rng.split rng in

  let people =
    List.init c.n_people (fun i ->
        [
          Printf.sprintf "u%d" i;
          Rng.pick r_people first_names;
          Rng.pick r_people last_names;
          Rng.pick r_people countries;
          date_between r_people d2010 d2012_end;
        ])
  in
  (* The knows network: every person draws a handful of acquaintances with
     Zipf-skewed targets, so low-id people become hubs and the degree
     distribution is power-law-ish. Self-edges and duplicates are dropped;
     the graph is directed (LDBC stores knows both ways, we keep the raw
     direction and let queries traverse either). *)
  let knows =
    List.concat
      (List.init c.n_people (fun i ->
           let d = 1 + Rng.zipf r_knows ~n:12 ~s:0.7 in
           let seen = Hashtbl.create 8 in
           let rec pick k acc =
             if k = 0 then acc
             else
               let t = Rng.zipf r_knows ~n:c.n_people ~s:0.8 in
               if t = i || Hashtbl.mem seen t then pick (k - 1) acc
               else begin
                 Hashtbl.replace seen t ();
                 pick (k - 1)
                   ([
                      Printf.sprintf "u%d" i;
                      Printf.sprintf "u%d" t;
                      date_between r_knows d2010 d2012_end;
                    ]
                   :: acc)
               end
           in
           List.rev (pick d [])))
  in
  let forums =
    List.init c.n_forums (fun i ->
        [
          Printf.sprintf "fo%d" i;
          Printf.sprintf "forum-%d" i;
          Printf.sprintf "u%d" (Rng.zipf r_forums ~n:c.n_people ~s:0.8);
          date_between r_forums d2010 d2012_end;
        ])
  in
  let posts =
    List.init c.n_posts (fun i ->
        [
          Printf.sprintf "po%d" i;
          Printf.sprintf "fo%d" (Rng.zipf r_posts ~n:c.n_forums ~s:0.6);
          Printf.sprintf "u%d" (Rng.zipf r_posts ~n:c.n_people ~s:0.8);
          Rng.pick r_posts countries;
          date_between r_posts d2010 d2012_end;
        ])
  in
  (* Comments: 70% extend an existing discussion by replying to a recent
     comment — this produces long reply chains (the deep traversals the
     [replyOfComment] regex queries exercise) — the rest start a thread
     under a post. *)
  let comments =
    List.init c.n_comments (fun i ->
        let chained = i > 0 && Rng.float r_comments 1.0 < 0.7 in
        let reply_post, reply_comment =
          if chained then
            let back = 1 + Rng.int r_comments (min i 3) in
            ("", Printf.sprintf "c%d" (i - back))
          else
            (Printf.sprintf "po%d" (Rng.zipf r_comments ~n:c.n_posts ~s:0.7), "")
        in
        [
          Printf.sprintf "c%d" i;
          Printf.sprintf "u%d" (Rng.zipf r_comments ~n:c.n_people ~s:0.8);
          reply_post;
          reply_comment;
          date_between r_comments d2010 d2012_end;
        ])
  in
  let likes =
    let seen = Hashtbl.create c.n_likes in
    let rec pick k acc =
      if k = 0 then acc
      else
        let p = Rng.zipf r_likes ~n:c.n_people ~s:0.7 in
        let po = Rng.zipf r_likes ~n:c.n_posts ~s:0.9 in
        if Hashtbl.mem seen (p, po) then pick (k - 1) acc
        else begin
          Hashtbl.replace seen (p, po) ();
          pick (k - 1)
            ([
               Printf.sprintf "u%d" p;
               Printf.sprintf "po%d" po;
               date_between r_likes d2010 d2012_end;
             ]
            :: acc)
        end
    in
    List.rev (pick c.n_likes [])
  in
  [
    ("people.csv", doc "id,firstName,lastName,country,creationDate" people);
    ("knows.csv", doc "src,dst,creationDate" knows);
    ("forums.csv", doc "id,title,moderator,creationDate" forums);
    ("posts.csv", doc "id,forum,author,country,creationDate" posts);
    ( "comments.csv",
      doc "id,author,replyOfPost,replyOfComment,creationDate" comments );
    ("likes.csv", doc "person,post,creationDate" likes);
  ]

let table_files =
  [
    ("People", "people.csv");
    ("KnowsRel", "knows.csv");
    ("Forums", "forums.csv");
    ("Posts", "posts.csv");
    ("Comments", "comments.csv");
    ("LikesRel", "likes.csv");
  ]

let loader ?seed ~scale () =
  let files = csv_files ?seed ~scale () in
  fun name ->
    match List.assoc_opt (String.lowercase_ascii name) files with
    | Some doc -> doc
    | None -> raise (Sys_error (Printf.sprintf "no generated file %S" name))

let ingest_all ?seed ~scale session =
  let loader = loader ?seed ~scale () in
  let script =
    Snb_schema.full_ddl ^ "\n" ^ Snb_schema.ingest_script table_files
  in
  ignore (Graql_gems.Session.run_script ~loader session script)
