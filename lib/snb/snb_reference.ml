module Csv = Graql_storage.Csv

let rows ?seed ~scale file =
  let files = Snb_gen.csv_files ?seed ~scale () in
  match Csv.parse_string (List.assoc file files) with
  | _header :: rows -> rows
  | [] -> []

let field row i = List.nth row i

(* ------------------------------------------------------------------ *)
(* Adjacency from the raw CSV text                                     *)

let knows_adj ?seed ~scale () =
  let adj : (string, string list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun r ->
      let s = field r 0 and d = field r 1 in
      Hashtbl.replace adj s
        (d :: Option.value ~default:[] (Hashtbl.find_opt adj s)))
    (rows ?seed ~scale "knows.csv");
  adj

let comment_parent ?seed ~scale () =
  let parent = Hashtbl.create 256 in
  List.iter
    (fun r ->
      let c = field r 0 and p = field r 3 in
      if p <> "" then Hashtbl.replace parent c p)
    (rows ?seed ~scale "comments.csv");
  parent

let comment_post ?seed ~scale () =
  let post = Hashtbl.create 256 in
  List.iter
    (fun r ->
      let c = field r 0 and p = field r 2 in
      if p <> "" then Hashtbl.replace post c p)
    (rows ?seed ~scale "comments.csv");
  post

(* ------------------------------------------------------------------ *)
(* Fixpoints over a "one complete traversal" relation                   *)

let neighbors adj v = Option.value ~default:[] (Hashtbl.find_opt adj v)

(* Closure of [round] from the given frontier; [reached] accumulates. *)
let closure ~round reached frontier =
  let front = ref frontier in
  while !front <> [] do
    let next = List.sort_uniq compare (List.concat_map round !front) in
    let fresh =
      List.filter
        (fun v ->
          if Hashtbl.mem reached v then false
          else begin
            Hashtbl.replace reached v ();
            true
          end)
        next
    in
    front := fresh
  done

let to_sorted reached =
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) reached [])

let knows_plus ?seed ~scale ~person () =
  let adj = knows_adj ?seed ~scale () in
  let reached = Hashtbl.create 64 in
  let first = List.sort_uniq compare (neighbors adj person) in
  List.iter (fun v -> Hashtbl.replace reached v ()) first;
  closure ~round:(neighbors adj) reached first;
  to_sorted reached

let knows_star ?seed ~scale ~person () =
  let adj = knows_adj ?seed ~scale () in
  let reached = Hashtbl.create 64 in
  Hashtbl.replace reached person ();
  closure ~round:(neighbors adj) reached [ person ];
  to_sorted reached

let knows_knows_plus ?seed ~scale ~person () =
  let adj = knows_adj ?seed ~scale () in
  let round v = List.concat_map (neighbors adj) (neighbors adj v) in
  let reached = Hashtbl.create 64 in
  let first = List.sort_uniq compare (round person) in
  List.iter (fun v -> Hashtbl.replace reached v ()) first;
  closure ~round reached first;
  to_sorted reached

let reply_chain ?seed ~scale ~comment ~n () =
  let parent = comment_parent ?seed ~scale () in
  let level = ref [ comment ] in
  for _ = 1 to n do
    level :=
      List.sort_uniq compare
        (List.filter_map (Hashtbl.find_opt parent) !level)
  done;
  List.sort compare !level

let thread_root_posts ?seed ~scale ~comment () =
  let parent = comment_parent ?seed ~scale () in
  let post = comment_post ?seed ~scale () in
  let reached = Hashtbl.create 16 in
  Hashtbl.replace reached comment ();
  closure
    ~round:(fun v -> Option.to_list (Hashtbl.find_opt parent v))
    reached [ comment ];
  List.sort_uniq compare
    (List.filter_map (Hashtbl.find_opt post) (to_sorted reached))

(* ------------------------------------------------------------------ *)
(* Deterministic interesting starting points                            *)

let hub_person ?seed ~scale () =
  let adj = knows_adj ?seed ~scale () in
  let best = ref ("u0", -1) in
  Hashtbl.iter
    (fun p ds ->
      let d = List.length ds in
      let bp, bd = !best in
      if d > bd || (d = bd && p < bp) then best := (p, d))
    adj;
  fst !best

let deepest_comment ?seed ~scale () =
  let parent = comment_parent ?seed ~scale () in
  let depth = Hashtbl.create 256 in
  let rec depth_of c =
    match Hashtbl.find_opt depth c with
    | Some d -> d
    | None ->
        let d =
          match Hashtbl.find_opt parent c with
          | Some p -> 1 + depth_of p
          | None -> 0
        in
        Hashtbl.replace depth c d;
        d
  in
  let best = ref ("c0", -1) in
  List.iter
    (fun r ->
      let c = field r 0 in
      let d = depth_of c in
      let bc, bd = !best in
      if d > bd || (d = bd && c < bc) then best := (c, d))
    (rows ?seed ~scale "comments.csv");
  !best
