(** Independent oracles for the SNB traversal queries, computed straight
    from the generated CSV text with plain OCaml data structures — no
    engine code involved. All results are sorted string-id lists. *)

val knows_plus :
  ?seed:int -> scale:int -> person:string -> unit -> string list
(** Everyone reachable from [person] over ≥1 [knows] hops (includes
    [person] itself only when it lies on a cycle). *)

val knows_star :
  ?seed:int -> scale:int -> person:string -> unit -> string list
(** As {!knows_plus} but always including [person] (zero hops). *)

val knows_knows_plus :
  ?seed:int -> scale:int -> person:string -> unit -> string list
(** Closure of the two-hop relation: everyone at even [knows] distance
    ≥ 2 composable hops from [person]. *)

val reply_chain :
  ?seed:int -> scale:int -> comment:string -> n:int -> unit -> string list
(** Comments exactly [n] [replyOfComment] hops above [comment]. *)

val thread_root_posts :
  ?seed:int -> scale:int -> comment:string -> unit -> string list
(** Posts reachable by climbing [replyOfComment]* then one
    [replyOfPost]. *)

val hub_person : ?seed:int -> scale:int -> unit -> string
(** The person with the largest [knows] out-degree (ties by id) — a
    deterministic non-trivial %Person1%. *)

val deepest_comment : ?seed:int -> scale:int -> unit -> string * int
(** The comment with the longest chain to its thread root, with that
    depth — a deterministic %Comment1% for chain queries. *)
