module Ast = Graql_lang.Ast
module Loc = Graql_lang.Loc

(* ------------------------------------------------------------------ *)
(* Script texts (end-to-end through the session pipeline)              *)

(* IC-style friends-of-friends closure: everyone reachable over one or
   more [knows] hops. *)
let q_knows_plus =
  {|
select * from graph
  Person (id = %Person1%) ( --knows--> Person )+
into subgraph knowsPlus
|}

(* Reachable circle plus everything they wrote: a Kleene star followed by
   plain steps. *)
let q_knows_star_posts =
  {|
select * from graph
  Person (id = %Person1%) ( --knows--> Person )* <--hasCreator-- Post
into subgraph circlePosts
|}

(* Two-hop friends' posts without a regex — exercises the fixed deep
   traversal path. *)
let q_fof_posts =
  {|
select Post.id from graph
  Person (id = %Person1%) --knows--> Person --knows--> Person
  <--hasCreator-- Post
into table FofPosts
|}

(* Even-distance closure: a two-atom group body under +, the query class
   where the product automaton beats per-path closure enumeration. *)
let q_knows_knows_plus =
  {|
select * from graph
  Person (id = %Person1%) ( --knows--> Person --knows--> Person )+
into subgraph evenKnows
|}

(* Walk a reply chain upward exactly four comments. *)
let q_reply_chain4 =
  {|
select * from graph
  Comment (id = %Comment1%) ( --replyOfComment--> Comment ){4}
into subgraph chain4
|}

(* Climb to the thread root, whatever the depth, and land on the post. *)
let q_thread_root =
  {|
select * from graph
  Comment (id = %Comment1%) ( --replyOfComment--> Comment )* --replyOfPost--> Post
into subgraph threadRoot
|}

(* The moderator's social reach. *)
let q_moderator_reach =
  {|
select * from graph
  Forum (id = %Forum1%) --hasModerator--> Person ( --knows--> Person )+
into subgraph modReach
|}

let all =
  [
    ("q_knows_plus", q_knows_plus);
    ("q_knows_star_posts", q_knows_star_posts);
    ("q_fof_posts", q_fof_posts);
    ("q_knows_knows_plus", q_knows_knows_plus);
    ("q_reply_chain4", q_reply_chain4);
    ("q_thread_root", q_thread_root);
    ("q_moderator_reach", q_moderator_reach);
  ]

(* ------------------------------------------------------------------ *)
(* AST builders (direct [Path_exec.run_multipath] harnesses: the bench  *)
(* and parity tests need regex endpoints as row columns, which script   *)
(* output targets cannot name)                                          *)

let v ?cond name =
  { Ast.v_kind = Ast.V_named name; v_label = None; v_cond = cond;
    v_loc = Loc.dummy }

let key_eq name value =
  v name
    ~cond:
      (Ast.E_binop
         ( Ast.Eq,
           Ast.E_attr (None, "id", Loc.dummy),
           Ast.E_lit (Ast.L_string value, Loc.dummy),
           Loc.dummy ))

let e ?(dir = Ast.Out) name =
  { Ast.e_kind = Ast.E_named name; e_dir = dir; e_label = None;
    e_cond = None; e_loc = Loc.dummy }

let regex_path ~head_type ~start ~body ~op =
  {
    Ast.head = key_eq head_type start;
    segments = [ Ast.Seg_regex (body, op, Loc.dummy) ];
  }

let path_knows_plus ~person =
  regex_path ~head_type:"Person" ~start:person
    ~body:[ (e "knows", v "Person") ]
    ~op:Ast.Rx_plus

let path_knows_star ~person =
  regex_path ~head_type:"Person" ~start:person
    ~body:[ (e "knows", v "Person") ]
    ~op:Ast.Rx_star

let path_knows_knows_plus ~person =
  regex_path ~head_type:"Person" ~start:person
    ~body:[ (e "knows", v "Person"); (e "knows", v "Person") ]
    ~op:Ast.Rx_plus

let path_reply_chain ~comment ~n =
  regex_path ~head_type:"Comment" ~start:comment
    ~body:[ (e "replyOfComment", v "Comment") ]
    ~op:(Ast.Rx_count n)

let path_thread_root ~comment =
  {
    Ast.head = key_eq "Comment" comment;
    segments =
      [
        Ast.Seg_regex
          ([ (e "replyOfComment", v "Comment") ], Ast.Rx_star, Loc.dummy);
        Ast.Seg_step (e "replyOfPost", v "Post");
      ];
  }
