(* An LDBC-SNB-style social network: people who know each other, forums
   holding posts, deep comment reply chains, and likes. Table and vertex
   names deliberately avoid the Berlin scenario's (People vs Persons,
   Person vs PersonVtx) so both can coexist in one process. *)
let tables_ddl =
  {|
create table People(
  id varchar(10),
  firstName varchar(10),
  lastName varchar(10),
  country varchar(10),
  creationDate date
)

create table KnowsRel(
  src varchar(10), // People.id
  dst varchar(10), // People.id
  creationDate date
)

create table Forums(
  id varchar(10),
  title varchar(20),
  moderator varchar(10), // People.id
  creationDate date
)

create table Posts(
  id varchar(10),
  forum varchar(10), // Forums.id
  author varchar(10), // People.id
  country varchar(10),
  creationDate date
)

create table Comments(
  id varchar(10),
  author varchar(10), // People.id
  replyOfPost varchar(10), // Posts.id, or empty for chained replies
  replyOfComment varchar(10), // Comments.id, or empty for root replies
  creationDate date
)

create table LikesRel(
  person varchar(10), // People.id
  post varchar(10), // Posts.id
  creationDate date
)
|}

let vertices_ddl =
  {|
create vertex Person(id) from table People
create vertex Forum(id) from table Forums
create vertex Post(id) from table Posts
create vertex Comment(id) from table Comments
|}

let edges_ddl =
  {|
create edge knows with
vertices (Person as A, Person as B)
from table KnowsRel
where KnowsRel.src = A.id
and KnowsRel.dst = B.id

create edge hasModerator with
vertices (Forum, Person)
where Forum.moderator = Person.id

create edge containerOf with
vertices (Forum, Post)
where Post.forum = Forum.id

create edge hasCreator with
vertices (Post, Person)
where Post.author = Person.id

create edge commentCreator with
vertices (Comment, Person)
where Comment.author = Person.id

create edge replyOfPost with
vertices (Comment, Post)
where Comment.replyOfPost = Post.id

create edge replyOfComment with
vertices (Comment as A, Comment as B)
where A.replyOfComment = B.id

create edge likes with
vertices (Person, Post)
from table LikesRel
where LikesRel.person = Person.id
and LikesRel.post = Post.id
|}

let full_ddl = String.concat "\n" [ tables_ddl; vertices_ddl; edges_ddl ]

let ingest_script files =
  String.concat "\n"
    (List.map
       (fun (table, file) -> Printf.sprintf "ingest table %s %s" table file)
       files)
