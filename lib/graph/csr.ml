type t = {
  nvertices : int;
  offsets : int array; (* length nvertices + 1 *)
  nbr : int array; (* length nedges: destination vertex *)
  eid : int array; (* length nedges: edge id *)
}

module Pool = Graql_parallel.Domain_pool

let par_edge_threshold = 8192

let build_seq ~nvertices ~src ~dst =
  let nedges = Array.length src in
  let counts = Array.make (nvertices + 1) 0 in
  Array.iter
    (fun s ->
      if s < 0 || s >= nvertices then invalid_arg "Csr.build: vertex out of range";
      counts.(s + 1) <- counts.(s + 1) + 1)
    src;
  for i = 1 to nvertices do
    counts.(i) <- counts.(i) + counts.(i - 1)
  done;
  let offsets = Array.copy counts in
  let nbr = Array.make nedges 0 and eid = Array.make nedges 0 in
  (* counts now doubles as the write cursor per vertex. *)
  for e = 0 to nedges - 1 do
    let s = src.(e) in
    let pos = counts.(s) in
    nbr.(pos) <- dst.(e);
    eid.(pos) <- e;
    counts.(s) <- pos + 1
  done;
  { nvertices; offsets; nbr; eid }

(* Parallel stable counting sort: per-chunk histograms turn into per-chunk
   write cursors (chunk c's slots for a vertex precede chunk c+1's), so
   the scatter needs no atomics and the result is byte-identical to the
   sequential build. *)
let build_par pool ~nvertices ~src ~dst =
  let nedges = Array.length src in
  let ranges = Array.of_list (Pool.chunk_ranges pool ~lo:0 ~hi:nedges ()) in
  let nchunks = Array.length ranges in
  let cnt = Array.init nchunks (fun _ -> Array.make nvertices 0) in
  let bad = Array.make (max 1 nchunks) false in
  Pool.run_tasks pool
    (List.init nchunks (fun c () ->
         let lo, hi = ranges.(c) in
         let cc = cnt.(c) in
         for e = lo to hi - 1 do
           let s = Array.unsafe_get src e in
           if s < 0 || s >= nvertices then bad.(c) <- true
           else Array.unsafe_set cc s (Array.unsafe_get cc s + 1)
         done));
  if Array.exists Fun.id bad then
    invalid_arg "Csr.build: vertex out of range";
  let offsets = Array.make (nvertices + 1) 0 in
  Pool.parallel_for_chunks pool ~lo:0 ~hi:nvertices (fun vlo vhi ->
      for v = vlo to vhi - 1 do
        let t = ref 0 in
        for c = 0 to nchunks - 1 do
          t := !t + cnt.(c).(v)
        done;
        offsets.(v + 1) <- !t
      done);
  for v = 1 to nvertices do
    offsets.(v) <- offsets.(v) + offsets.(v - 1)
  done;
  Pool.parallel_for_chunks pool ~lo:0 ~hi:nvertices (fun vlo vhi ->
      for v = vlo to vhi - 1 do
        let run = ref offsets.(v) in
        for c = 0 to nchunks - 1 do
          let here = cnt.(c).(v) in
          cnt.(c).(v) <- !run;
          run := !run + here
        done
      done);
  let nbr = Array.make nedges 0 and eid = Array.make nedges 0 in
  Pool.run_tasks pool
    (List.init nchunks (fun c () ->
         let lo, hi = ranges.(c) in
         let cc = cnt.(c) in
         for e = lo to hi - 1 do
           let s = Array.unsafe_get src e in
           let pos = Array.unsafe_get cc s in
           Array.unsafe_set nbr pos (Array.unsafe_get dst e);
           Array.unsafe_set eid pos e;
           Array.unsafe_set cc s (pos + 1)
         done));
  { nvertices; offsets; nbr; eid }

let build ?pool ~nvertices ~src ~dst () =
  let nedges = Array.length src in
  if Array.length dst <> nedges then invalid_arg "Csr.build: length mismatch";
  match pool with
  | Some pool when nedges >= par_edge_threshold && nvertices > 0 ->
      build_par pool ~nvertices ~src ~dst
  | _ -> build_seq ~nvertices ~src ~dst

let nvertices t = t.nvertices
let nedges t = Array.length t.nbr

let degree t v =
  if v < 0 || v >= t.nvertices then invalid_arg "Csr.degree";
  t.offsets.(v + 1) - t.offsets.(v)

let iter_neighbors t v f =
  if v < 0 || v >= t.nvertices then invalid_arg "Csr.iter_neighbors";
  for i = t.offsets.(v) to t.offsets.(v + 1) - 1 do
    f ~dst:(Array.unsafe_get t.nbr i) ~eid:(Array.unsafe_get t.eid i)
  done

let fold_neighbors t v f init =
  let acc = ref init in
  iter_neighbors t v (fun ~dst ~eid -> acc := f !acc ~dst ~eid);
  !acc

let neighbors t v =
  let lo = t.offsets.(v) and hi = t.offsets.(v + 1) in
  Array.init (hi - lo) (fun i -> (t.nbr.(lo + i), t.eid.(lo + i)))

let max_degree t =
  let m = ref 0 in
  for v = 0 to t.nvertices - 1 do
    m := max !m (degree t v)
  done;
  !m

let avg_degree t =
  if t.nvertices = 0 then 0.0
  else float_of_int (nedges t) /. float_of_int t.nvertices
