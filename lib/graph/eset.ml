module Table = Graql_storage.Table
module Value = Graql_storage.Value

type t = {
  name : string;
  src_type : string;
  dst_type : string;
  src : int array;
  dst : int array;
  forward : Csr.t;
  reverse : Csr.t;
  attr_table : Table.t option;
  attr_rows : int array;
}

let make ?pool ~name ~src_type ~dst_type ~n_src_vertices ~n_dst_vertices ~src
    ~dst ~attr_table ~attr_rows () =
  let forward = Csr.build ?pool ~nvertices:n_src_vertices ~src ~dst () in
  let reverse = Csr.build ?pool ~nvertices:n_dst_vertices ~src:dst ~dst:src () in
  { name; src_type; dst_type; src; dst; forward; reverse; attr_table; attr_rows }

let name t = t.name
let src_type t = t.src_type
let dst_type t = t.dst_type
let size t = Array.length t.src
let src t e = t.src.(e)
let dst t e = t.dst.(e)
let forward t = t.forward
let reverse t = t.reverse
let attr_table t = t.attr_table
let attr_row t e = t.attr_rows.(e)

let attr t ~edge ~col =
  match t.attr_table with
  | Some table -> Table.get table ~row:t.attr_rows.(edge) ~col
  | None -> invalid_arg (Printf.sprintf "edge type %s has no attributes" t.name)

let attr_by_name t ~edge name =
  match t.attr_table with
  | Some table -> Table.get_by_name table ~row:t.attr_rows.(edge) name
  | None -> invalid_arg (Printf.sprintf "edge type %s has no attributes" t.name)
