module Table = Graql_storage.Table
module Value = Graql_storage.Value
module Schema = Graql_storage.Schema
module Row_expr = Graql_relational.Row_expr
module Relop = Graql_relational.Relop
module Int_vec = Graql_util.Int_vec

let build_vertices ?pool ~name ~source ~key_cols ?cond () =
  let rows =
    match cond with
    | None -> Array.init (Table.nrows source) (fun i -> i)
    | Some cond -> Relop.select_indices ?pool source cond
  in
  let key_cols_arr = Array.of_list key_cols in
  let schema = Table.schema source in
  let key_schema =
    Schema.make
      (List.map
         (fun c ->
           { Schema.name = Schema.col_name schema c; dtype = Schema.col_dtype schema c })
         key_cols)
  in
  let key_index = Hashtbl.create (max 16 (Array.length rows)) in
  let keys = ref [] in
  let nkeys = ref 0 in
  let first_row = Int_vec.create () in
  let duplicated = ref false in
  Array.iter
    (fun r ->
      let kvals =
        Array.map (fun c -> Table.get source ~row:r ~col:c) key_cols_arr
      in
      if not (Array.exists (fun v -> v = Value.Null) kvals) then begin
        let key = Vset.key_of_values kvals in
        match Hashtbl.find_opt key_index key with
        | Some _ -> duplicated := true
        | None ->
            Hashtbl.add key_index key !nkeys;
            keys := kvals :: !keys;
            Int_vec.push first_row r;
            incr nkeys
      end)
    rows;
  let keys = Array.of_list (List.rev !keys) in
  if not !duplicated then
    (* One-to-one mapping: every instance is one source row, so the whole
       source row is attribute-visible. *)
    Vset.make ~name ~key_schema ~keys ~key_index ~attr_table:source
      ~attr_rows:(Int_vec.to_array first_row) ~one_to_one:true
      ~source_table:source
  else begin
    (* Many-to-one: only the key columns are well-defined per instance. *)
    let attr_table = Table.create ~name key_schema in
    Array.iter (fun kvals -> Table.append_row_array attr_table kvals) keys;
    Vset.make ~name ~key_schema ~keys ~key_index ~attr_table
      ~attr_rows:(Array.init (Array.length keys) (fun i -> i))
      ~one_to_one:false ~source_table:source
  end

let build_edges ?pool ~name ~src ~dst ~driving ~src_key ~dst_key ?cond
    ?(dedupe = false) ?(keep_attrs = true) () =
  let rows =
    match cond with
    | None -> Array.init (Table.nrows driving) (fun i -> i)
    | Some cond -> Relop.select_indices ?pool driving cond
  in
  let src_key = Array.of_list src_key and dst_key = Array.of_list dst_key in
  let key_of cols r =
    let kvals = Array.map (fun c -> Table.get driving ~row:r ~col:c) cols in
    if Array.exists (fun v -> v = Value.Null) kvals then None
    else Some (Vset.key_of_values kvals)
  in
  let srcs = Int_vec.create () and dsts = Int_vec.create () in
  let attr_rows = Int_vec.create () in
  let seen = Hashtbl.create (if dedupe then 256 else 1) in
  Array.iter
    (fun r ->
      match (key_of src_key r, key_of dst_key r) with
      | Some sk, Some dk -> (
          match (Vset.find_by_key_string src sk, Vset.find_by_key_string dst dk) with
          | Some s, Some d ->
              let fresh = (not dedupe) || not (Hashtbl.mem seen (s, d)) in
              if fresh then begin
                if dedupe then Hashtbl.add seen (s, d) ();
                Int_vec.push srcs s;
                Int_vec.push dsts d;
                Int_vec.push attr_rows r
              end
          | _ -> () (* endpoint filtered out of the vertex view: no edge *))
      | _ -> () (* Null key: no edge *))
    rows;
  let attr_rows = Int_vec.to_array attr_rows in
  let attr_table, attr_rows =
    if keep_attrs && Table.arity driving > 0 then (Some driving, attr_rows)
    else (None, Array.map (fun _ -> 0) attr_rows)
  in
  Eset.make ?pool ~name ~src_type:(Vset.name src) ~dst_type:(Vset.name dst)
    ~n_src_vertices:(Vset.size src) ~n_dst_vertices:(Vset.size dst)
    ~src:(Int_vec.to_array srcs) ~dst:(Int_vec.to_array dsts) ~attr_table
    ~attr_rows ()
