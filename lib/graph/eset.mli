(** A built edge type (Eq. 2): directed edges between two vertex types,
    with both forward and reverse CSR indices (Sec. III-B) and optional
    attributes drawn from the driving relation that created the edges. *)

module Table = Graql_storage.Table
module Value = Graql_storage.Value

type t

val name : t -> string
val src_type : t -> string
(** Name of the source vertex type. *)

val dst_type : t -> string
val size : t -> int
val src : t -> int -> int
(** Source vertex id of edge [e]. *)

val dst : t -> int -> int
val forward : t -> Csr.t
(** Index over source vertices: follow the edge lexically. *)

val reverse : t -> Csr.t
(** Index over destination vertices: traverse against edge direction. *)

val attr_table : t -> Table.t option
val attr_row : t -> int -> int
val attr : t -> edge:int -> col:int -> Value.t
(** Raises [Invalid_argument] when the edge type carries no attributes. *)

val attr_by_name : t -> edge:int -> string -> Value.t

val make :
  ?pool:Graql_parallel.Domain_pool.t ->
  name:string ->
  src_type:string ->
  dst_type:string ->
  n_src_vertices:int ->
  n_dst_vertices:int ->
  src:int array ->
  dst:int array ->
  attr_table:Table.t option ->
  attr_rows:int array ->
  unit ->
  t
(** The CSR indices build on the pool when one is given. *)
