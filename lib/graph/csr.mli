(** Compressed-sparse-row adjacency: the paper's "edge index"
    (Sec. III-B). One CSR is built per edge type per direction; the
    planner exploits having both. *)

type t

val build :
  ?pool:Graql_parallel.Domain_pool.t ->
  nvertices:int ->
  src:int array ->
  dst:int array ->
  unit ->
  t
(** [build ~nvertices ~src ~dst ()] indexes edge [i] as [src.(i) -> dst.(i)];
    neighbors of a vertex are grouped; edge ids are retained. With a pool
    (and enough edges) the counting sort runs chunk-parallel and remains
    stable: the output is byte-identical to the sequential build. *)

val nvertices : t -> int
val nedges : t -> int
val degree : t -> int -> int

val iter_neighbors : t -> int -> (dst:int -> eid:int -> unit) -> unit
(** Visit all out-entries of a vertex (in edge-id order). *)

val fold_neighbors : t -> int -> ('a -> dst:int -> eid:int -> 'a) -> 'a -> 'a

val neighbors : t -> int -> (int * int) array
(** [(dst, eid)] pairs; fresh array. *)

val max_degree : t -> int
val avg_degree : t -> float
