module Table = Graql_storage.Table
module Value = Graql_storage.Value
module Schema = Graql_storage.Schema
module Column = Graql_storage.Column
module Int_vec = Graql_util.Int_vec
module Int_table = Graql_util.Int_table
module Pool = Graql_parallel.Domain_pool

(* Below this many build+probe rows the partitioned machinery is pure
   overhead; run the single-partition path inline. Exposed for tests. *)
let par_threshold = ref 4096

(* When cleared, single-column int joins route through the generic
   string-key path — the row-at-a-time reference the batched kernels are
   property-tested byte-identical against. *)
let use_int_fast = ref true

(* Join keys as value-string tuples. Dictionary ids are per-column, so we
   can't compare raw ints across tables; canonical display strings are a
   correct, simple key. Null appears as a distinguished constructor and is
   filtered before insertion/probe. *)
let key_of table cols r =
  let parts =
    List.map
      (fun c ->
        let v = Table.get table ~row:r ~col:c in
        if v = Value.Null then None else Some (Value.to_string v))
      cols
  in
  if List.exists Option.is_none parts then None
  else Some (String.concat "\x00" (List.map Option.get parts))

let build_side left right on =
  (* Returns (build table, build cols, probe table, probe cols, swapped). *)
  if Table.nrows left <= Table.nrows right then
    (left, List.map fst on, right, List.map snd on, false)
  else (right, List.map snd on, left, List.map fst on, true)

(* Probe-side payload to build-side id space: identity for Int/Date keys;
   a whole-dictionary translation array for Varchar (one array lookup per
   probe row, -1 = no counterpart — unlike a memo table, safe to share
   across domains). The variant keeps the identity case allocation-free
   instead of forcing an [int option] per probe row. *)
type translation = T_id | T_dict of int array

let dict_translation ~bc ~pc =
  T_dict
    (Array.init (Column.dict_size pc) (fun pid ->
         match Column.intern_id bc (Column.dict_lookup pc pid) with
         | Some b -> b
         | None -> -1))

(* Matching rows accumulate as parallel (build, probe) vectors: one pair
   of vectors per probe chunk, concatenated in chunk order, so the final
   arrays list matches in probe-row order — byte-identical to the
   sequential scan no matter how many domains ran the probe. *)
let concat_pair_vecs outs =
  let total = Array.fold_left (fun a (ls, _) -> a + Int_vec.length ls) 0 outs in
  let l = Array.make (max total 1) 0 and r = Array.make (max total 1) 0 in
  let pos = ref 0 in
  Array.iter
    (fun (ls, rs) ->
      Int_vec.blit_into ls l !pos;
      Int_vec.blit_into rs r !pos;
      pos := !pos + Int_vec.length ls)
    outs;
  if total = 0 then ([||], [||]) else (l, r)

let next_pow2 n =
  let c = ref 1 in
  while !c < n do
    c := !c * 2
  done;
  !c

let log2 n =
  let b = ref 0 in
  while 1 lsl !b < n do
    incr b
  done;
  !b

(* Radix partition count: enough partitions to keep every domain busy and
   each build-side partition roughly cache-sized. Output does not depend
   on the choice — it only routes keys to sub-tables. *)
let partition_count pool nb =
  next_pow2 (min 256 (max (4 * Pool.size pool) (nb / 4096)))

let null_bit nm r =
  Char.code (Bytes.unsafe_get nm (r lsr 3)) land (1 lsl (r land 7)) <> 0

(* Single-column equi-joins on int-payload columns (Int, Date, and
   dictionary-encoded Varchar) hash raw ints instead of building string
   keys — this is the hot path of edge-view construction and of the
   from-clause join planner. The batch kernels loop directly over the raw
   payload arrays: no bounds-checked accessor, no [int option] from key
   translation, and no emit-closure allocation per probe row (the chain
   walk uses {!Int_table}'s cursor API inline). *)
let int_join_rows ?pool ~build ~bcol ~probe ~pcol ~swapped ~translate () =
  let bc = Table.column build bcol and pc = Table.column probe pcol in
  let nb = Table.nrows build and np = Table.nrows probe in
  let bdata = Column.int_data bc and pdata = Column.int_data pc in
  let bnm = Column.null_mask bc and pnm = Column.null_mask pc in
  let bnulls = Column.has_nulls bc and pnulls = Column.has_nulls pc in
  let finish (vb, vp) = if swapped then (vp, vb) else (vb, vp) in
  (* Key-range scan (one cheap sequential pass): dense integer build keys
     — row ids, foreign keys, dictionary codes — get a direct-address
     table instead of a hash: one array load per probe, no mixing, no
     collision walk. *)
  let kmin = ref max_int and kmax = ref min_int in
  if bnulls then
    for r = 0 to nb - 1 do
      if not (null_bit bnm r) then begin
        let k = Array.unsafe_get bdata r in
        if k < !kmin then kmin := k;
        if k > !kmax then kmax := k
      end
    done
  else
    for r = 0 to nb - 1 do
      let k = Array.unsafe_get bdata r in
      if k < !kmin then kmin := k;
      if k > !kmax then kmax := k
    done;
  let span = if !kmax < !kmin then 0 else !kmax - !kmin + 1 in
  if span > 0 && span <= (4 * nb) + 1024 then begin
    (* Direct-address build: heads.(k - base) is the first build row with
       key k, chained through [nextrow] in build-row order — the same
       match order the hash path replays. *)
    let base = !kmin and khi = !kmax in
    let heads = Array.make span (-1) in
    let tails = Array.make span (-1) in
    let nextrow = Array.make nb (-1) in
    let dups = ref false in
    let insert r =
      let i = Array.unsafe_get bdata r - base in
      let h = Array.unsafe_get heads i in
      if h < 0 then begin
        Array.unsafe_set heads i r;
        Array.unsafe_set tails i r
      end
      else begin
        dups := true;
        Array.unsafe_set nextrow (Array.unsafe_get tails i) r;
        Array.unsafe_set tails i r
      end
    in
    if bnulls then
      for r = 0 to nb - 1 do
        if not (null_bit bnm r) then insert r
      done
    else
      for r = 0 to nb - 1 do
        insert r
      done;
    let lookup k =
      if k >= base && k <= khi then Array.unsafe_get heads (k - base) else -1
    in
    (* Chain-walking probe over [lo, hi); read-only against the build
       arrays, so safe from any number of domains. *)
    let probe_dense vb vp lo hi =
      let chain_walk r b =
        let e = ref b in
        while !e >= 0 do
          Int_vec.push vb !e;
          Int_vec.push vp r;
          e := Array.unsafe_get nextrow !e
        done
      in
      match translate with
      | T_id ->
          for r = lo to hi - 1 do
            if not (pnulls && null_bit pnm r) then begin
              let b = lookup (Array.unsafe_get pdata r) in
              if b >= 0 then chain_walk r b
            end
          done
      | T_dict trans ->
          for r = lo to hi - 1 do
            if not (pnulls && null_bit pnm r) then begin
              let t = Array.unsafe_get trans (Array.unsafe_get pdata r) in
              if t >= 0 then begin
                let b = lookup t in
                if b >= 0 then chain_walk r b
              end
            end
          done
    in
    match pool with
    | Some pool when np >= !par_threshold ->
        let pranges = Array.of_list (Pool.chunk_ranges pool ~lo:0 ~hi:np ()) in
        let outs =
          Array.map
            (fun (lo, hi) ->
              (* Capacity for one match per probe row, the common case. *)
              (Int_vec.create ~capacity:(hi - lo) (),
               Int_vec.create ~capacity:(hi - lo) ()))
            pranges
        in
        Pool.run_tasks pool
          (Array.to_list
             (Array.mapi
                (fun i (lo, hi) () ->
                  let vb, vp = outs.(i) in
                  probe_dense vb vp lo hi)
                pranges));
        finish (concat_pair_vecs outs)
    | _ ->
        if not !dups then begin
          (* Unique build keys (every foreign-key join): at most one match
             per probe row, so matches write straight into pre-sized
             arrays — no growth checks in the loop, and no final copy when
             every probe row matches. *)
          let ob = Array.make (max np 1) 0 and op = Array.make (max np 1) 0 in
          let pos = ref 0 in
          let emit r b =
            Array.unsafe_set ob !pos b;
            Array.unsafe_set op !pos r;
            incr pos
          in
          (match translate with
          | T_id ->
              if pnulls then
                for r = 0 to np - 1 do
                  if not (null_bit pnm r) then begin
                    let b = lookup (Array.unsafe_get pdata r) in
                    if b >= 0 then emit r b
                  end
                done
              else
                for r = 0 to np - 1 do
                  let b = lookup (Array.unsafe_get pdata r) in
                  if b >= 0 then emit r b
                done
          | T_dict trans ->
              for r = 0 to np - 1 do
                if not (pnulls && null_bit pnm r) then begin
                  let t = Array.unsafe_get trans (Array.unsafe_get pdata r) in
                  if t >= 0 then begin
                    let b = lookup t in
                    if b >= 0 then emit r b
                  end
                end
              done);
          let n = !pos in
          let ob = if n = Array.length ob then ob else Array.sub ob 0 n in
          let op = if n = Array.length op then op else Array.sub op 0 n in
          if swapped then (op, ob) else (ob, op)
        end
        else begin
          let vb = Int_vec.create ~capacity:np ()
          and vp = Int_vec.create ~capacity:np () in
          probe_dense vb vp 0 np;
          let b, p = finish (vb, vp) in
          (Int_vec.to_array b, Int_vec.to_array p)
        end
  end
  else begin
    (* Sparse keys: hash. Probe rows [lo, hi) against the partitioned
       tables, appending (build row, probe row) pairs. The
       specializations hoist the null test and key translation out of the
       inner loop shape. *)
    let probe_range tables nparts vb vp lo hi =
      let pmask = nparts - 1 in
      let chain_walk r k =
        let tbl = Array.unsafe_get tables (Int_table.mix k land pmask) in
        let e = ref (Int_table.first_match tbl k) in
        while !e >= 0 do
          Int_vec.push vb (Int_table.entry_value tbl !e);
          Int_vec.push vp r;
          e := Int_table.next_entry tbl !e
        done
      in
      match translate with
      | T_id ->
          if pnulls then
            for r = lo to hi - 1 do
              if not (null_bit pnm r) then
                chain_walk r (Array.unsafe_get pdata r)
            done
          else
            for r = lo to hi - 1 do
              chain_walk r (Array.unsafe_get pdata r)
            done
      | T_dict trans ->
          if pnulls then
            for r = lo to hi - 1 do
              if not (null_bit pnm r) then begin
                let b = Array.unsafe_get trans (Array.unsafe_get pdata r) in
                if b >= 0 then chain_walk r b
              end
            done
          else
            for r = lo to hi - 1 do
              let b = Array.unsafe_get trans (Array.unsafe_get pdata r) in
              if b >= 0 then chain_walk r b
            done
    in
    match pool with
    | Some pool when nb + np >= !par_threshold ->
        let nparts = partition_count pool nb in
        let p_bits = log2 nparts in
        let pmask = nparts - 1 in
        (* Phase 1: parallel radix partition of the build side. Each build
           chunk scatters (key, row) into private per-partition buckets. *)
        let branges = Array.of_list (Pool.chunk_ranges pool ~lo:0 ~hi:nb ()) in
        let buckets =
          Array.map
            (fun _ ->
              Array.init nparts (fun _ ->
                  (Int_vec.create (), Int_vec.create ())))
            branges
        in
        Pool.run_tasks pool
          (Array.to_list
             (Array.mapi
                (fun c (lo, hi) () ->
                  let mine = buckets.(c) in
                  let scatter r =
                    let k = Array.unsafe_get bdata r in
                    let ks, rws =
                      Array.unsafe_get mine (Int_table.mix k land pmask)
                    in
                    Int_vec.push ks k;
                    Int_vec.push rws r
                  in
                  if bnulls then
                    for r = lo to hi - 1 do
                      if not (null_bit bnm r) then scatter r
                    done
                  else
                    for r = lo to hi - 1 do
                      scatter r
                    done)
                branges));
        (* Phase 2: one build task per partition. Draining the chunk
           buckets in chunk order preserves build-row insertion order, so
           probes replay matches exactly as the sequential path would. *)
        let tables =
          Array.make nparts (Int_table.create ~hash_shift:p_bits ~expected:0 ())
        in
        Pool.run_tasks pool
          (List.init nparts (fun p () ->
               let total = ref 0 in
               Array.iter
                 (fun chunk -> total := !total + Int_vec.length (fst chunk.(p)))
                 buckets;
               let tbl =
                 Int_table.create ~hash_shift:p_bits ~expected:!total ()
               in
               Array.iter
                 (fun chunk ->
                   let ks, rws = chunk.(p) in
                   for i = 0 to Int_vec.length ks - 1 do
                     Int_table.add tbl (Int_vec.unsafe_get ks i)
                       (Int_vec.unsafe_get rws i)
                   done)
                 buckets;
               tables.(p) <- tbl));
        (* Phase 3: chunk-parallel probe against the read-only tables. *)
        let pranges = Array.of_list (Pool.chunk_ranges pool ~lo:0 ~hi:np ()) in
        let outs =
          Array.map
            (fun (lo, hi) ->
              (Int_vec.create ~capacity:(hi - lo) (),
               Int_vec.create ~capacity:(hi - lo) ()))
            pranges
        in
        Pool.run_tasks pool
          (Array.to_list
             (Array.mapi
                (fun i (lo, hi) () ->
                  let vb, vp = outs.(i) in
                  probe_range tables nparts vb vp lo hi)
                pranges));
        finish (concat_pair_vecs outs)
    | _ ->
        let tbl = Int_table.create ~expected:nb () in
        if bnulls then
          for r = 0 to nb - 1 do
            if not (null_bit bnm r) then
              Int_table.add tbl (Array.unsafe_get bdata r) r
          done
        else
          for r = 0 to nb - 1 do
            Int_table.add tbl (Array.unsafe_get bdata r) r
          done;
        if not (Int_table.has_dups tbl) then begin
          (* Unique build keys: as in the dense case, write matches into
             pre-sized arrays. *)
          let ob = Array.make (max np 1) 0 and op = Array.make (max np 1) 0 in
          let pos = ref 0 in
          let emit r e =
            Array.unsafe_set ob !pos (Int_table.entry_value tbl e);
            Array.unsafe_set op !pos r;
            incr pos
          in
          (match translate with
          | T_id ->
              if pnulls then
                for r = 0 to np - 1 do
                  if not (null_bit pnm r) then begin
                    let e =
                      Int_table.first_match tbl (Array.unsafe_get pdata r)
                    in
                    if e >= 0 then emit r e
                  end
                done
              else
                for r = 0 to np - 1 do
                  let e =
                    Int_table.first_match tbl (Array.unsafe_get pdata r)
                  in
                  if e >= 0 then emit r e
                done
          | T_dict trans ->
              for r = 0 to np - 1 do
                if not (pnulls && null_bit pnm r) then begin
                  let b = Array.unsafe_get trans (Array.unsafe_get pdata r) in
                  if b >= 0 then begin
                    let e = Int_table.first_match tbl b in
                    if e >= 0 then emit r e
                  end
                end
              done);
          let n = !pos in
          let ob = if n = Array.length ob then ob else Array.sub ob 0 n in
          let op = if n = Array.length op then op else Array.sub op 0 n in
          if swapped then (op, ob) else (ob, op)
        end
        else begin
          let vb = Int_vec.create ~capacity:np ()
          and vp = Int_vec.create ~capacity:np () in
          probe_range [| tbl |] 1 vb vp 0 np;
          let b, p = finish (vb, vp) in
          (Int_vec.to_array b, Int_vec.to_array p)
        end
  end

(* Fallback for multi-column or mixed-type keys: canonical string keys
   into a Hashtbl built once, then (optionally) a chunk-parallel probe —
   reads of an unmutated Hashtbl are safe across domains. *)
let generic_join_rows ?pool ~build ~bcols ~probe ~pcols ~swapped () =
  let nb = Table.nrows build and np = Table.nrows probe in
  let index = Hashtbl.create (max 16 nb) in
  Table.iter_rows
    (fun r ->
      match key_of build bcols r with
      | Some k -> Hashtbl.add index k r
      | None -> ())
    build;
  let probe_range ls rs lo hi =
    for r = lo to hi - 1 do
      match key_of probe pcols r with
      | Some k ->
          (* Hashtbl.find_all returns most-recently-added first;
             reverse for build-row order. *)
          List.iter
            (fun b ->
              if swapped then begin
                Int_vec.push ls r;
                Int_vec.push rs b
              end
              else begin
                Int_vec.push ls b;
                Int_vec.push rs r
              end)
            (List.rev (Hashtbl.find_all index k))
      | None -> ()
    done
  in
  match pool with
  | Some pool when nb + np >= !par_threshold ->
      let pranges = Array.of_list (Pool.chunk_ranges pool ~lo:0 ~hi:np ()) in
      let outs =
        Array.map (fun _ -> (Int_vec.create (), Int_vec.create ())) pranges
      in
      Pool.run_tasks pool
        (Array.to_list
           (Array.mapi
              (fun i (lo, hi) () ->
                let ls, rs = outs.(i) in
                probe_range ls rs lo hi)
              pranges));
      concat_pair_vecs outs
  | _ ->
      let ls = Int_vec.create () and rs = Int_vec.create () in
      probe_range ls rs 0 np;
      (Int_vec.to_array ls, Int_vec.to_array rs)

let join_rows ?pool ~left ~right ~on () =
  let build, bcols, probe, pcols, swapped = build_side left right on in
  let fast =
    if not !use_int_fast then None
    else
      match (bcols, pcols) with
      | [ bcol ], [ pcol ] -> (
          let bc = Table.column build bcol and pc = Table.column probe pcol in
          let open Graql_storage.Dtype in
          match (Column.dtype bc, Column.dtype pc) with
          | Int, Int | Date, Date ->
              Some
                (int_join_rows ?pool ~build ~bcol ~probe ~pcol ~swapped
                   ~translate:T_id ())
          | Varchar _, Varchar _ ->
              let translate = dict_translation ~bc ~pc in
              Some
                (int_join_rows ?pool ~build ~bcol ~probe ~pcol ~swapped
                   ~translate ())
          | _ -> None)
      | _ -> None
  in
  match fast with
  | Some rows -> rows
  | None -> generic_join_rows ?pool ~build ~bcols ~probe ~pcols ~swapped ()

let join_pairs ?pool ~left ~right ~on () =
  let ls, rs = join_rows ?pool ~left ~right ~on () in
  Array.init (Array.length ls) (fun i -> (ls.(i), rs.(i)))

(* Output materialization: one pre-sized column per output column, filled
   by gathering from the source column at the matched rows. Chunk
   boundaries stay multiples of 8 so concurrent null-bitmap writes never
   touch the same byte. *)
let gather_column ?pool ~src ~rows n =
  let dst = Column.create_sized ~share_dict_of:src (Column.dtype src) n in
  (match pool with
  | Some pool when n >= !par_threshold ->
      let chunk =
        let c = max 1 (n / (4 * Pool.size pool)) in
        (c + 7) / 8 * 8
      in
      Pool.parallel_for_chunks pool ~chunk ~lo:0 ~hi:n (fun lo hi ->
          Column.gather_into ~src ~rows ~dst ~lo ~hi)
  | _ -> Column.gather_into ~src ~rows ~dst ~lo:0 ~hi:n);
  dst

let hash_join ?pool ?name ~left ~right ~on () =
  let lrows, rrows = join_rows ?pool ~left ~right ~on () in
  let out_schema = Schema.concat (Table.schema left) (Table.schema right) in
  let name =
    match name with
    | Some n -> n
    | None -> Table.name left ^ "_join_" ^ Table.name right
  in
  let n = Array.length lrows in
  let la = Table.arity left in
  let cols =
    Array.init (Schema.arity out_schema) (fun i ->
        if i < la then gather_column ?pool ~src:(Table.column left i) ~rows:lrows n
        else gather_column ?pool ~src:(Table.column right (i - la)) ~rows:rrows n)
  in
  Table.of_columns ~name out_schema cols

let semi_join_left ?pool ~left ~right ~on () =
  let rcols = List.map snd on and lcols = List.map fst on in
  let fast =
    if not !use_int_fast then None
    else
      match (lcols, rcols) with
      | [ lcol ], [ rcol ] -> (
          let lc = Table.column left lcol and rc = Table.column right rcol in
          let open Graql_storage.Dtype in
          match (Column.dtype lc, Column.dtype rc) with
          | Int, Int | Date, Date -> Some (lc, rc, T_id)
          | Varchar _, Varchar _ ->
              (* Keys come from the right side: translate left ids into the
                 right column's id space before the membership probe. *)
              Some (lc, rc, dict_translation ~bc:rc ~pc:lc)
          | _ -> None)
      | _ -> None
  in
  match fast with
  | Some (lc, rc, translate) ->
      let nl = Table.nrows left and nr = Table.nrows right in
      let rdata = Column.int_data rc and ldata = Column.int_data lc in
      let rnm = Column.null_mask rc and lnm = Column.null_mask lc in
      let rnulls = Column.has_nulls rc and lnulls = Column.has_nulls lc in
      let keys = Int_table.create ~expected:nr () in
      let add_key k = if not (Int_table.mem keys k) then Int_table.add keys k 0 in
      if rnulls then
        for r = 0 to nr - 1 do
          if not (null_bit rnm r) then add_key (Array.unsafe_get rdata r)
        done
      else
        for r = 0 to nr - 1 do
          add_key (Array.unsafe_get rdata r)
        done;
      let scan out lo hi =
        match translate with
        | T_id ->
            for r = lo to hi - 1 do
              if
                (not (lnulls && null_bit lnm r))
                && Int_table.mem keys (Array.unsafe_get ldata r)
              then Int_vec.push out r
            done
        | T_dict trans ->
            for r = lo to hi - 1 do
              if not (lnulls && null_bit lnm r) then begin
                let b = Array.unsafe_get trans (Array.unsafe_get ldata r) in
                if b >= 0 && Int_table.mem keys b then Int_vec.push out r
              end
            done
      in
      (match pool with
      | Some pool when nl >= !par_threshold ->
          let ranges = Array.of_list (Pool.chunk_ranges pool ~lo:0 ~hi:nl ()) in
          let outs = Array.map (fun _ -> Int_vec.create ()) ranges in
          Pool.run_tasks pool
            (Array.to_list
               (Array.mapi (fun i (lo, hi) () -> scan outs.(i) lo hi) ranges));
          let acc = Int_vec.create () in
          Array.iter (fun o -> Int_vec.append acc o) outs;
          Int_vec.to_array acc
      | _ ->
          let out = Int_vec.create () in
          scan out 0 nl;
          Int_vec.to_array out)
  | None ->
      let keys = Hashtbl.create (max 16 (Table.nrows right)) in
      Table.iter_rows
        (fun r ->
          match key_of right rcols r with
          | Some k -> Hashtbl.replace keys k ()
          | None -> ())
        right;
      let out = Int_vec.create () in
      Table.iter_rows
        (fun r ->
          match key_of left lcols r with
          | Some k -> if Hashtbl.mem keys k then Int_vec.push out r
          | None -> ())
        left;
      Int_vec.to_array out
