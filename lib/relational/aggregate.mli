(** Grouped and global aggregation: count / sum / avg / min / max
    (Table I).

    Rows accumulate into per-chunk private hash tables (chunks of
    {!chunk_rows} rows, processed by the pool when one is given) that
    merge associatively in chunk order, so group order (first-seen) and
    every aggregate value — float sums included — are bit-identical for
    any pool size, or no pool at all. *)

module Table = Graql_storage.Table
module Value = Graql_storage.Value

type agg =
  | Count_star
  | Count of int  (** non-null count of a column *)
  | Sum of int
  | Avg of int
  | Min of int
  | Max of int

val output_dtype : Table.t -> agg -> Graql_storage.Dtype.t

val group_by :
  ?pool:Graql_parallel.Domain_pool.t ->
  ?name:string ->
  Table.t ->
  keys:int list ->
  aggs:(agg * string) list ->
  Table.t
(** One output row per distinct key combination (first-seen order), with
    the key columns followed by one column per aggregate. With [keys = []]
    behaves as a single global group (one row even over an empty input,
    matching SQL). *)

val scalar : ?pool:Graql_parallel.Domain_pool.t -> Table.t -> agg -> Value.t
(** Global aggregate over the whole table. *)

val vectorized : bool ref
(** When set (default), single-key group-bys over int-payload key columns
    (Int/Date/Bool/Varchar) and global aggregates run batched: dense int
    group ids and unboxed accumulator arrays instead of string keys and
    boxed states. Results are bit-identical to the generic path — the
    batch kernels replicate its fixed chunk decomposition, float merge
    order included (property-tested). Cleared to force the reference
    path. *)

val chunk_rows : int ref
(** Fixed accumulation chunk size (default 8192). The decomposition is
    deliberately independent of the pool so results never vary with
    parallelism. Exposed for tests. *)
