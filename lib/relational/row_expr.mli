(** Scalar expressions evaluated against one row of a table (or of a
    binding relation). This is the compiled form of GraQL condition
    expressions — both relational [where] clauses and graph step
    conditions lower to this type.

    Comparison with SQL three-valued logic: any comparison or arithmetic
    over Null yields Null; [is_true] maps Null to false. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul | Div | Mod

type t =
  | Const of Graql_storage.Value.t
  | Col of int  (** column index in the row being evaluated *)
  | Cmp of cmp * t * t
  | Arith of arith * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | IsNull of t
  | Like of t * string
      (** SQL LIKE with [%] and [_] wildcards, pre-compiled. *)

val eval : (int -> Graql_storage.Value.t) -> t -> Graql_storage.Value.t
(** [eval get e] evaluates [e] where [get i] reads column [i]. *)

val like_match : string -> string -> bool
(** [like_match pattern s] — the LIKE matcher ([%]/[_] wildcards), exposed
    so {!Fast_pred} can resolve a pattern against a dictionary once. *)

val is_true : Graql_storage.Value.t -> bool
(** Truthiness under three-valued logic: [Bool true] only. *)

val eval_bool : (int -> Graql_storage.Value.t) -> t -> bool

val columns : t -> int list
(** Sorted, deduplicated referenced column indices. *)

val map_columns : (int -> int) -> t -> t
(** Re-index column references (used when lowering onto join layouts). *)

val const_true : t
val pp : Format.formatter -> t -> unit
