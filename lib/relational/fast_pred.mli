(** Fast-path predicate compilation for table scans.

    The generic evaluator boxes every cell into a {!Graql_storage.Value.t}.
    For the common predicate shapes — comparisons of a column against a
    constant or another column, combined with and/or/not, plus null tests
    and [LIKE] over dictionary-encoded strings — this module compiles to
    closures reading unboxed column payloads directly: ints/dates compare
    as ints, dictionary-encoded strings compare as dictionary ids
    (equality constants and LIKE patterns resolved against the dictionary
    once at compile time), floats as floats. Null semantics follow SQL
    three-valued logic exactly (verified by a property test against the
    generic evaluator).

    Two compilation targets exist: [compile] produces a per-row closure,
    [compile_batch] a chunked batch evaluator that fills tri-valued byte
    masks with tight loops over the raw payload arrays and compacts them
    into a selection vector — no closure dispatch or bounds check per row.
    Both return [None] when the expression uses a feature outside the fast
    fragment (arithmetic, comparisons whose types don't cooperate);
    callers fall back to {!Row_expr.eval}. *)

val compile :
  Graql_storage.Table.t -> Row_expr.t -> (int -> bool) option
(** [compile table pred] — the closure takes a row id and answers whether
    the predicate is definitely true ([Null] counts as false, as in a SQL
    [where]). *)

val compile_batch :
  Graql_storage.Table.t ->
  Row_expr.t ->
  (unit -> lo:int -> hi:int -> Graql_util.Int_vec.t -> unit) option
(** [compile_batch table pred] compiles once (resolving constants and
    LIKE dictionary tables); the returned maker instantiates private
    scratch buffers, so call it once per domain and share nothing. The
    runner appends the ids of rows in [lo, hi) satisfying the predicate,
    in ascending order — the same ids [compile]'s closure accepts. *)

val batch_chunk : int
(** Rows evaluated per mask refill (4096). *)

val compilable : Row_expr.t -> bool
(** Whether the expression falls inside the fast fragment (for tests and
    planners; [compile] may still return [None] if column types don't
    cooperate). *)
