(** Core relational operators over {!Graql_storage.Table}: selection,
    projection, distinct, sorting, top-n (Table I of the paper). All
    operators materialize fresh tables; scans optionally run
    domain-parallel. *)

module Table = Graql_storage.Table
module Value = Graql_storage.Value

val vectorized : bool ref
(** When set (default), scans with compilable predicates evaluate through
    {!Fast_pred.compile_batch} (chunked masks over raw payloads) and row
    materialization gathers columns instead of boxing values. The
    row-at-a-time path remains as reference; results are byte-identical
    either way (property-tested). *)

val select_indices :
  ?pool:Graql_parallel.Domain_pool.t -> Table.t -> Row_expr.t -> int array
(** Row ids satisfying the predicate, in row order (deterministic under any
    pool size). *)

val materialize : ?name:string -> Table.t -> int array -> Table.t
(** New table containing exactly the given rows, in order. *)

val select :
  ?pool:Graql_parallel.Domain_pool.t ->
  ?name:string -> Table.t -> Row_expr.t -> Table.t

val project : ?name:string -> Table.t -> int list -> Table.t
(** Keep the given columns, in the given order. *)

val project_named : ?name:string -> Table.t ->
  (string * Graql_storage.Dtype.t * Row_expr.t) list -> Table.t
(** Generalized projection: each output column is (name, type, expr); this
    is what [select a, b+1 as c from t] lowers to. *)

val distinct : ?name:string -> Table.t -> Table.t
(** Remove duplicate rows; keeps first occurrence order. *)

type dir = Asc | Desc

val order_by : ?name:string -> Table.t -> (int * dir) list -> Table.t
(** Stable multi-key sort; [Null] sorts first under [Asc]. *)

val top_n : ?name:string -> Table.t -> n:int -> keys:(int * dir) list -> Table.t
(** The [n] best rows under the ordering, sorted; heap-based O(rows log n).
    Ties beyond position [n] are broken by earliest row id (stable). *)

val limit : ?name:string -> Table.t -> int -> Table.t
val union_all : ?name:string -> Table.t -> Table.t -> Table.t
(** Requires equal schemas (up to names). *)
