module Table = Graql_storage.Table
module Value = Graql_storage.Value
module Schema = Graql_storage.Schema
module Dtype = Graql_storage.Dtype
module Column = Graql_storage.Column
module Int_table = Graql_util.Int_table
module Int_vec = Graql_util.Int_vec
module Pool = Graql_parallel.Domain_pool

(* When set (default), single-key group-bys over int-payload key columns
   and global aggregates run through the batched kernels below: dense
   group ids from an int hash table instead of string keys, accumulators
   in unboxed arrays instead of boxed [Value.t] states. Cleared by the
   property tests to compare against the row-at-a-time reference. *)
let vectorized = ref true

type agg =
  | Count_star
  | Count of int
  | Sum of int
  | Avg of int
  | Min of int
  | Max of int

(* Rows accumulate chunk-by-chunk with this fixed chunk size whether or
   not a pool is present, and chunk accumulators merge in chunk order.
   Fixing the decomposition (rather than deriving it from the pool size)
   is what keeps float sums bit-identical across every pool size,
   including none. Exposed for tests. *)
let chunk_rows = ref 8192

type state = {
  mutable count : int;
  mutable sum_i : int;
  mutable sum_f : float;
  mutable saw_float : bool;
  mutable min_v : Value.t;
  mutable max_v : Value.t;
}

let fresh_state () =
  {
    count = 0;
    sum_i = 0;
    sum_f = 0.0;
    saw_float = false;
    min_v = Value.Null;
    max_v = Value.Null;
  }

let feed st v =
  if v <> Value.Null then begin
    st.count <- st.count + 1;
    (match v with
    | Value.Int i -> st.sum_i <- st.sum_i + i
    | Value.Float f ->
        st.saw_float <- true;
        st.sum_f <- st.sum_f +. f
    | _ -> ());
    if st.min_v = Value.Null || Value.compare v st.min_v < 0 then st.min_v <- v;
    if st.max_v = Value.Null || Value.compare v st.max_v > 0 then st.max_v <- v
  end

(* Fold [b] into [a]; associative over chunk order for every aggregate
   except the float sums, whose order is pinned by the fixed chunking. *)
let merge_state a b =
  a.count <- a.count + b.count;
  a.sum_i <- a.sum_i + b.sum_i;
  a.sum_f <- a.sum_f +. b.sum_f;
  a.saw_float <- a.saw_float || b.saw_float;
  if b.min_v <> Value.Null && (a.min_v = Value.Null || Value.compare b.min_v a.min_v < 0)
  then a.min_v <- b.min_v;
  if b.max_v <> Value.Null && (a.max_v = Value.Null || Value.compare b.max_v a.max_v > 0)
  then a.max_v <- b.max_v

let sum_value st =
  if st.count = 0 then Value.Null
  else if st.saw_float then Value.Float (st.sum_f +. float_of_int st.sum_i)
  else Value.Int st.sum_i

let finish agg (star_count, st) =
  match agg with
  | Count_star -> Value.Int star_count
  | Count _ -> Value.Int st.count
  | Sum _ -> sum_value st
  | Avg _ ->
      if st.count = 0 then Value.Null
      else
        let total = st.sum_f +. float_of_int st.sum_i in
        Value.Float (total /. float_of_int st.count)
  | Min _ -> st.min_v
  | Max _ -> st.max_v

let source_col = function
  | Count_star -> None
  | Count c | Sum c | Avg c | Min c | Max c -> Some c

let output_dtype table agg =
  let schema = Table.schema table in
  match agg with
  | Count_star | Count _ -> Dtype.Int
  | Avg _ -> Dtype.Float
  | Sum c -> Schema.col_dtype schema c
  | Min c | Max c -> Schema.col_dtype schema c

(* ------------------------------------------------------------------ *)
(* Batched fast path.                                                  *)
(*                                                                     *)
(* Replicates the generic path's chunk decomposition exactly: float    *)
(* sums accumulate into a per-chunk partial that is folded into the    *)
(* running total at each chunk boundary, for every group present in    *)
(* the chunk — the same merge the generic path performs on its chunk   *)
(* accumulators — so results are bit-identical, not just numerically   *)
(* close. Integer counts/sums and min/max are associative and need no  *)
(* such care.                                                          *)
(* ------------------------------------------------------------------ *)

(* How an aggregate's source column is consumed by the batch kernels. *)
type fkind =
  | K_star  (** [Count_star]: no source column *)
  | K_count_only  (** Varchar: null-count only (sums contribute nothing) *)
  | K_int
  | K_date
  | K_bool
  | K_float

let classify table agg =
  match source_col agg with
  | None -> Some (K_star, None)
  | Some c -> (
      let col = Table.column table c in
      match Column.dtype col with
      | Dtype.Int -> Some (K_int, Some col)
      | Dtype.Date -> Some (K_date, Some col)
      | Dtype.Bool -> Some (K_bool, Some col)
      | Dtype.Float -> Some (K_float, Some col)
      | Dtype.Varchar _ -> (
          match agg with
          (* Min/max over strings order by string compare, not by
             dictionary id; leave those to the generic path. *)
          | Min _ | Max _ -> None
          | _ -> Some (K_count_only, Some col)))

(* Per-aggregate unboxed accumulators, indexed by dense group id. All
   arrays grow together (see [grow] below); unused fields for a given
   kind stay at their zeros. *)
type fagg = {
  kind : fkind;
  fcol : Column.t option;
  mutable cnt : int array;  (** non-null rows fed *)
  mutable fsum_i : int array;
  mutable acc_f : float array;  (** chunk-merged float sum *)
  mutable part_f : float array;  (** current chunk's partial *)
  mutable min_i : int array;
  mutable max_i : int array;
  mutable min_f : float array;
  mutable max_f : float array;
}

let fresh_fagg (kind, fcol) cap =
  {
    kind;
    fcol;
    cnt = Array.make cap 0;
    fsum_i = Array.make cap 0;
    acc_f = Array.make cap 0.0;
    part_f = Array.make cap 0.0;
    min_i = Array.make cap 0;
    max_i = Array.make cap 0;
    min_f = Array.make cap 0.0;
    max_f = Array.make cap 0.0;
  }

let null_bit nm r =
  Char.code (Bytes.unsafe_get nm (r lsr 3)) land (1 lsl (r land 7)) <> 0

(* [g r -> unit] accumulator for one aggregate; reads arrays through the
   record so it stays valid across growth. Min/max comparisons mirror
   [feed]: strict replacement under [Value.compare], which for floats is
   [Float.compare] (total order, nan least). *)
let updater a =
  match (a.kind, a.fcol) with
  | K_star, _ | _, None -> fun _ _ -> ()
  | K_count_only, Some c ->
      let nulls = Column.has_nulls c and nm = Column.null_mask c in
      fun g r ->
        if not (nulls && null_bit nm r) then a.cnt.(g) <- a.cnt.(g) + 1
  | K_int, Some c ->
      let data = Column.int_data c in
      let nulls = Column.has_nulls c and nm = Column.null_mask c in
      fun g r ->
        if not (nulls && null_bit nm r) then begin
          let v = Array.unsafe_get data r in
          let c0 = a.cnt.(g) in
          a.cnt.(g) <- c0 + 1;
          a.fsum_i.(g) <- a.fsum_i.(g) + v;
          if c0 = 0 then begin
            a.min_i.(g) <- v;
            a.max_i.(g) <- v
          end
          else begin
            if v < a.min_i.(g) then a.min_i.(g) <- v;
            if v > a.max_i.(g) then a.max_i.(g) <- v
          end
        end
  | (K_date | K_bool), Some c ->
      (* Like K_int but no sum: [feed] adds nothing to sums for dates and
         booleans (sum(date_col) is Int 0, preserved quirk). *)
      let data = Column.int_data c in
      let nulls = Column.has_nulls c and nm = Column.null_mask c in
      fun g r ->
        if not (nulls && null_bit nm r) then begin
          let v = Array.unsafe_get data r in
          let c0 = a.cnt.(g) in
          a.cnt.(g) <- c0 + 1;
          if c0 = 0 then begin
            a.min_i.(g) <- v;
            a.max_i.(g) <- v
          end
          else begin
            if v < a.min_i.(g) then a.min_i.(g) <- v;
            if v > a.max_i.(g) then a.max_i.(g) <- v
          end
        end
  | K_float, Some c ->
      let data = Column.float_data c in
      let nulls = Column.has_nulls c and nm = Column.null_mask c in
      fun g r ->
        if not (nulls && null_bit nm r) then begin
          let v = Array.unsafe_get data r in
          let c0 = a.cnt.(g) in
          a.cnt.(g) <- c0 + 1;
          a.part_f.(g) <- a.part_f.(g) +. v;
          if c0 = 0 then begin
            a.min_f.(g) <- v;
            a.max_f.(g) <- v
          end
          else begin
            if Float.compare v a.min_f.(g) < 0 then a.min_f.(g) <- v;
            if Float.compare v a.max_f.(g) > 0 then a.max_f.(g) <- v
          end
        end

(* Same formulas as [finish]/[sum_value], reading the unboxed arrays.
   [saw_float] is equivalent to (kind = K_float && cnt > 0): a float
   column feeds a Float value on every non-null row. *)
let ffinish agg a star g =
  let cnt = a.cnt.(g) in
  match agg with
  | Count_star -> Value.Int star
  | Count _ -> Value.Int cnt
  | Sum _ ->
      if cnt = 0 then Value.Null
      else if a.kind = K_float then
        Value.Float (a.acc_f.(g) +. float_of_int a.fsum_i.(g))
      else Value.Int a.fsum_i.(g)
  | Avg _ ->
      if cnt = 0 then Value.Null
      else
        Value.Float
          ((a.acc_f.(g) +. float_of_int a.fsum_i.(g)) /. float_of_int cnt)
  | Min _ ->
      if cnt = 0 then Value.Null
      else (
        match a.kind with
        | K_int -> Value.Int a.min_i.(g)
        | K_date -> Value.Date a.min_i.(g)
        | K_bool -> Value.Bool (a.min_i.(g) = 1)
        | K_float -> Value.Float a.min_f.(g)
        | K_star | K_count_only -> assert false)
  | Max _ ->
      if cnt = 0 then Value.Null
      else (
        match a.kind with
        | K_int -> Value.Int a.max_i.(g)
        | K_date -> Value.Date a.max_i.(g)
        | K_bool -> Value.Bool (a.max_i.(g) = 1)
        | K_float -> Value.Float a.max_f.(g)
        | K_star | K_count_only -> assert false)

(* Fast single-key grouping: dense group ids in first-seen row order (the
   generic path's group order), appended into [out]. Runs sequentially —
   it is chunk-for-chunk identical to the generic path at any pool size,
   and the unboxed inner loop beats the parallel boxed one handily. *)
let group_by_fast table ~kcol ~agg_arr ~faggs out =
  let n = Table.nrows table in
  let kc = Table.column table kcol in
  let kdata = Column.int_data kc in
  let knulls = Column.has_nulls kc and knm = Column.null_mask kc in
  let gids = Int_table.create ~expected:256 () in
  let cap = ref 64 in
  let ngroups = ref 0 in
  let null_gid = ref (-1) in
  let star = ref (Array.make !cap 0) in
  let first_row = ref (Array.make !cap 0) in
  let chunk_seen = ref (Array.make !cap (-1)) in
  let grow () =
    let c2 = 2 * !cap in
    let widen_i a = Array.append a (Array.make !cap 0) in
    let widen_f a = Array.append a (Array.make !cap 0.0) in
    star := widen_i !star;
    first_row := widen_i !first_row;
    chunk_seen := Array.append !chunk_seen (Array.make !cap (-1));
    Array.iter
      (fun a ->
        a.cnt <- widen_i a.cnt;
        a.fsum_i <- widen_i a.fsum_i;
        a.acc_f <- widen_f a.acc_f;
        a.part_f <- widen_f a.part_f;
        a.min_i <- widen_i a.min_i;
        a.max_i <- widen_i a.max_i;
        a.min_f <- widen_f a.min_f;
        a.max_f <- widen_f a.max_f)
      faggs;
    cap := c2
  in
  let updaters = Array.map updater faggs in
  let nagg = Array.length updaters in
  let has_float = Array.exists (fun a -> a.kind = K_float) faggs in
  let touched = Int_vec.create () in
  let chunk = max 1 !chunk_rows in
  let lo = ref 0 in
  while !lo < n do
    let hi = min n (!lo + chunk) in
    let cid = !lo in
    for r = !lo to hi - 1 do
      let g =
        if knulls && null_bit knm r then begin
          if !null_gid < 0 then begin
            if !ngroups = !cap then grow ();
            null_gid := !ngroups;
            (!first_row).(!ngroups) <- r;
            incr ngroups
          end;
          !null_gid
        end
        else begin
          let k = Array.unsafe_get kdata r in
          let e = Int_table.first_match gids k in
          if e >= 0 then Int_table.entry_value gids e
          else begin
            if !ngroups = !cap then grow ();
            let g = !ngroups in
            Int_table.add gids k g;
            (!first_row).(g) <- r;
            incr ngroups;
            g
          end
        end
      in
      (!star).(g) <- (!star).(g) + 1;
      if has_float && (!chunk_seen).(g) <> cid then begin
        (!chunk_seen).(g) <- cid;
        Int_vec.push touched g
      end;
      for j = 0 to nagg - 1 do
        (Array.unsafe_get updaters j) g r
      done
    done;
    (* Chunk boundary: fold each present group's float partial into its
       running sum — the generic path's [merge_state] in array form. *)
    if has_float then begin
      for i = 0 to Int_vec.length touched - 1 do
        let g = Int_vec.unsafe_get touched i in
        Array.iter
          (fun a ->
            if a.kind = K_float then begin
              a.acc_f.(g) <- a.acc_f.(g) +. a.part_f.(g);
              a.part_f.(g) <- 0.0
            end)
          faggs
      done;
      Int_vec.clear touched
    end;
    lo := hi
  done;
  for g = 0 to !ngroups - 1 do
    let kval = Table.get table ~row:(!first_row).(g) ~col:kcol in
    let row = Array.make (1 + nagg) kval in
    for j = 0 to nagg - 1 do
      row.(j + 1) <- ffinish agg_arr.(j) faggs.(j) (!star).(g) g
    done;
    Table.append_row_array out row
  done

(* The fast path applies to a single key column with an int payload. A
   Varchar key needs one extra guard: the generic path keys groups by
   display string, under which Null and a literal "null" string collide
   into one group — fall back when both can occur so the (admittedly
   odd) behaviour stays identical. *)
let fast_key_ok kc =
  match Column.dtype kc with
  | Dtype.Int | Dtype.Date | Dtype.Bool -> true
  | Dtype.Varchar _ ->
      not (Column.has_nulls kc && Column.intern_id kc "null" <> None)
  | Dtype.Float -> false

(* Per-chunk private accumulator: group key -> (key values, star count,
   per-agg states), plus first-seen order (reversed). *)
type group_acc = {
  groups : (string, Value.t array * int ref * state array) Hashtbl.t;
  mutable order : string list;
}

let fresh_acc () = { groups = Hashtbl.create 64; order = [] }

let feed_row acc table ~keys ~agg_arr ~nagg r =
  let kvals =
    Array.of_list (List.map (fun k -> Table.get table ~row:r ~col:k) keys)
  in
  let key =
    String.concat "\x00" (Array.to_list (Array.map Value.to_string kvals))
  in
  let _, star, states =
    match Hashtbl.find_opt acc.groups key with
    | Some g -> g
    | None ->
        let g = (kvals, ref 0, Array.init nagg (fun _ -> fresh_state ())) in
        Hashtbl.add acc.groups key g;
        acc.order <- key :: acc.order;
        g
  in
  incr star;
  Array.iteri
    (fun i agg ->
      match source_col agg with
      | Some c -> feed states.(i) (Table.get table ~row:r ~col:c)
      | None -> ())
    agg_arr

(* Merge [b] into [a]: combine shared groups, append b-only groups in b's
   first-seen order. Merging accumulators in chunk order makes the global
   first-seen order equal the sequential scan's. *)
let merge_acc a b =
  List.iter
    (fun key ->
      let kvals, star_b, states_b = Hashtbl.find b.groups key in
      match Hashtbl.find_opt a.groups key with
      | Some (_, star_a, states_a) ->
          star_a := !star_a + !star_b;
          Array.iteri (fun i st -> merge_state st states_b.(i)) states_a
      | None ->
          Hashtbl.add a.groups key (kvals, star_b, states_b);
          a.order <- key :: a.order)
    (List.rev b.order);
  a

let group_by ?pool ?name table ~keys ~aggs =
  let schema = Table.schema table in
  let out_cols =
    List.map
      (fun k ->
        { Schema.name = Schema.col_name schema k; dtype = Schema.col_dtype schema k })
      keys
    @ List.map
        (fun (agg, alias) -> { Schema.name = alias; dtype = output_dtype table agg })
        aggs
  in
  let out_schema = Schema.make out_cols in
  let name = match name with Some n -> n | None -> Table.name table in
  let out = Table.create ~name out_schema in
  let nagg = List.length aggs in
  let agg_arr = Array.of_list (List.map fst aggs) in
  let fast =
    if not !vectorized then None
    else
      match keys with
      | [ kcol ] when fast_key_ok (Table.column table kcol) ->
          let kinds = Array.map (classify table) agg_arr in
          if Array.for_all Option.is_some kinds then
            Some (kcol, Array.map (fun k -> fresh_fagg (Option.get k) 64) kinds)
          else None
      | _ -> None
  in
  match fast with
  | Some (kcol, faggs) ->
      group_by_fast table ~kcol ~agg_arr ~faggs out;
      out
  | None ->
  let n = Table.nrows table in
  let chunk = max 1 !chunk_rows in
  let body acc r = feed_row acc table ~keys ~agg_arr ~nagg r in
  let acc =
    match pool with
    | Some pool when n > chunk ->
        Pool.parallel_reduce ~chunk pool ~init:fresh_acc ~body ~merge:merge_acc
          ~lo:0 ~hi:n
    | _ ->
        (* Same chunk decomposition run inline, so the result is
           bit-identical to the parallel path. *)
        let acc = fresh_acc () in
        let lo = ref 0 in
        while !lo < n do
          let hi = min n (!lo + chunk) in
          let part = if !lo = 0 then acc else fresh_acc () in
          for r = !lo to hi - 1 do
            body part r
          done;
          if part != acc then ignore (merge_acc acc part);
          lo := hi
        done;
        acc
  in
  let emit key =
    let kvals, star, states = Hashtbl.find acc.groups key in
    let aggvals =
      Array.mapi (fun i agg -> finish agg (!star, states.(i))) agg_arr
    in
    Table.append_row_array out (Array.append kvals aggvals)
  in
  if keys = [] && Hashtbl.length acc.groups = 0 then begin
    (* Global aggregate over empty input: one all-default row. *)
    let states = Array.init nagg (fun _ -> fresh_state ()) in
    let aggvals = Array.mapi (fun i agg -> finish agg (0, states.(i))) agg_arr in
    Table.append_row_array out aggvals
  end
  else List.iter emit (List.rev acc.order);
  out

let scalar ?pool table agg =
  match if !vectorized then classify table agg else None with
  | Some kf ->
      (* Single group: same chunked accumulation as [group_by_fast], with
         the chunk partial folded unconditionally at every boundary (the
         generic scalar merges every chunk's state, group presence or
         not). *)
      let n = Table.nrows table in
      let a = fresh_fagg kf 1 in
      let upd = updater a in
      let chunk = max 1 !chunk_rows in
      let lo = ref 0 in
      while !lo < n do
        let hi = min n (!lo + chunk) in
        for r = !lo to hi - 1 do
          upd 0 r
        done;
        a.acc_f.(0) <- a.acc_f.(0) +. a.part_f.(0);
        a.part_f.(0) <- 0.0;
        lo := hi
      done;
      ffinish agg a n 0
  | None ->
  let n = Table.nrows table in
  let chunk = max 1 !chunk_rows in
  let body (star, st) r =
    incr star;
    match source_col agg with
    | Some c -> feed st (Table.get table ~row:r ~col:c)
    | None -> ()
  in
  let init () = (ref 0, fresh_state ()) in
  let merge (star_a, st_a) (star_b, st_b) =
    star_a := !star_a + !star_b;
    merge_state st_a st_b;
    (star_a, st_a)
  in
  let star, st =
    match pool with
    | Some pool when n > chunk ->
        Pool.parallel_reduce ~chunk pool ~init ~body ~merge ~lo:0 ~hi:n
    | _ ->
        let acc = init () in
        let lo = ref 0 in
        while !lo < n do
          let hi = min n (!lo + chunk) in
          let part = if !lo = 0 then acc else init () in
          for r = !lo to hi - 1 do
            body part r
          done;
          if part != acc then ignore (merge acc part);
          lo := hi
        done;
        acc
  in
  finish agg (!star, st)
