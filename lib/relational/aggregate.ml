module Table = Graql_storage.Table
module Value = Graql_storage.Value
module Schema = Graql_storage.Schema
module Dtype = Graql_storage.Dtype
module Pool = Graql_parallel.Domain_pool

type agg =
  | Count_star
  | Count of int
  | Sum of int
  | Avg of int
  | Min of int
  | Max of int

(* Rows accumulate chunk-by-chunk with this fixed chunk size whether or
   not a pool is present, and chunk accumulators merge in chunk order.
   Fixing the decomposition (rather than deriving it from the pool size)
   is what keeps float sums bit-identical across every pool size,
   including none. Exposed for tests. *)
let chunk_rows = ref 8192

type state = {
  mutable count : int;
  mutable sum_i : int;
  mutable sum_f : float;
  mutable saw_float : bool;
  mutable min_v : Value.t;
  mutable max_v : Value.t;
}

let fresh_state () =
  {
    count = 0;
    sum_i = 0;
    sum_f = 0.0;
    saw_float = false;
    min_v = Value.Null;
    max_v = Value.Null;
  }

let feed st v =
  if v <> Value.Null then begin
    st.count <- st.count + 1;
    (match v with
    | Value.Int i -> st.sum_i <- st.sum_i + i
    | Value.Float f ->
        st.saw_float <- true;
        st.sum_f <- st.sum_f +. f
    | _ -> ());
    if st.min_v = Value.Null || Value.compare v st.min_v < 0 then st.min_v <- v;
    if st.max_v = Value.Null || Value.compare v st.max_v > 0 then st.max_v <- v
  end

(* Fold [b] into [a]; associative over chunk order for every aggregate
   except the float sums, whose order is pinned by the fixed chunking. *)
let merge_state a b =
  a.count <- a.count + b.count;
  a.sum_i <- a.sum_i + b.sum_i;
  a.sum_f <- a.sum_f +. b.sum_f;
  a.saw_float <- a.saw_float || b.saw_float;
  if b.min_v <> Value.Null && (a.min_v = Value.Null || Value.compare b.min_v a.min_v < 0)
  then a.min_v <- b.min_v;
  if b.max_v <> Value.Null && (a.max_v = Value.Null || Value.compare b.max_v a.max_v > 0)
  then a.max_v <- b.max_v

let sum_value st =
  if st.count = 0 then Value.Null
  else if st.saw_float then Value.Float (st.sum_f +. float_of_int st.sum_i)
  else Value.Int st.sum_i

let finish agg (star_count, st) =
  match agg with
  | Count_star -> Value.Int star_count
  | Count _ -> Value.Int st.count
  | Sum _ -> sum_value st
  | Avg _ ->
      if st.count = 0 then Value.Null
      else
        let total = st.sum_f +. float_of_int st.sum_i in
        Value.Float (total /. float_of_int st.count)
  | Min _ -> st.min_v
  | Max _ -> st.max_v

let source_col = function
  | Count_star -> None
  | Count c | Sum c | Avg c | Min c | Max c -> Some c

let output_dtype table agg =
  let schema = Table.schema table in
  match agg with
  | Count_star | Count _ -> Dtype.Int
  | Avg _ -> Dtype.Float
  | Sum c -> Schema.col_dtype schema c
  | Min c | Max c -> Schema.col_dtype schema c

(* Per-chunk private accumulator: group key -> (key values, star count,
   per-agg states), plus first-seen order (reversed). *)
type group_acc = {
  groups : (string, Value.t array * int ref * state array) Hashtbl.t;
  mutable order : string list;
}

let fresh_acc () = { groups = Hashtbl.create 64; order = [] }

let feed_row acc table ~keys ~agg_arr ~nagg r =
  let kvals =
    Array.of_list (List.map (fun k -> Table.get table ~row:r ~col:k) keys)
  in
  let key =
    String.concat "\x00" (Array.to_list (Array.map Value.to_string kvals))
  in
  let _, star, states =
    match Hashtbl.find_opt acc.groups key with
    | Some g -> g
    | None ->
        let g = (kvals, ref 0, Array.init nagg (fun _ -> fresh_state ())) in
        Hashtbl.add acc.groups key g;
        acc.order <- key :: acc.order;
        g
  in
  incr star;
  Array.iteri
    (fun i agg ->
      match source_col agg with
      | Some c -> feed states.(i) (Table.get table ~row:r ~col:c)
      | None -> ())
    agg_arr

(* Merge [b] into [a]: combine shared groups, append b-only groups in b's
   first-seen order. Merging accumulators in chunk order makes the global
   first-seen order equal the sequential scan's. *)
let merge_acc a b =
  List.iter
    (fun key ->
      let kvals, star_b, states_b = Hashtbl.find b.groups key in
      match Hashtbl.find_opt a.groups key with
      | Some (_, star_a, states_a) ->
          star_a := !star_a + !star_b;
          Array.iteri (fun i st -> merge_state st states_b.(i)) states_a
      | None ->
          Hashtbl.add a.groups key (kvals, star_b, states_b);
          a.order <- key :: a.order)
    (List.rev b.order);
  a

let group_by ?pool ?name table ~keys ~aggs =
  let schema = Table.schema table in
  let out_cols =
    List.map
      (fun k ->
        { Schema.name = Schema.col_name schema k; dtype = Schema.col_dtype schema k })
      keys
    @ List.map
        (fun (agg, alias) -> { Schema.name = alias; dtype = output_dtype table agg })
        aggs
  in
  let out_schema = Schema.make out_cols in
  let name = match name with Some n -> n | None -> Table.name table in
  let out = Table.create ~name out_schema in
  let nagg = List.length aggs in
  let agg_arr = Array.of_list (List.map fst aggs) in
  let n = Table.nrows table in
  let chunk = max 1 !chunk_rows in
  let body acc r = feed_row acc table ~keys ~agg_arr ~nagg r in
  let acc =
    match pool with
    | Some pool when n > chunk ->
        Pool.parallel_reduce ~chunk pool ~init:fresh_acc ~body ~merge:merge_acc
          ~lo:0 ~hi:n
    | _ ->
        (* Same chunk decomposition run inline, so the result is
           bit-identical to the parallel path. *)
        let acc = fresh_acc () in
        let lo = ref 0 in
        while !lo < n do
          let hi = min n (!lo + chunk) in
          let part = if !lo = 0 then acc else fresh_acc () in
          for r = !lo to hi - 1 do
            body part r
          done;
          if part != acc then ignore (merge_acc acc part);
          lo := hi
        done;
        acc
  in
  let emit key =
    let kvals, star, states = Hashtbl.find acc.groups key in
    let aggvals =
      Array.mapi (fun i agg -> finish agg (!star, states.(i))) agg_arr
    in
    Table.append_row_array out (Array.append kvals aggvals)
  in
  if keys = [] && Hashtbl.length acc.groups = 0 then begin
    (* Global aggregate over empty input: one all-default row. *)
    let states = Array.init nagg (fun _ -> fresh_state ()) in
    let aggvals = Array.mapi (fun i agg -> finish agg (0, states.(i))) agg_arr in
    Table.append_row_array out aggvals
  end
  else List.iter emit (List.rev acc.order);
  out

let scalar ?pool table agg =
  let n = Table.nrows table in
  let chunk = max 1 !chunk_rows in
  let body (star, st) r =
    incr star;
    match source_col agg with
    | Some c -> feed st (Table.get table ~row:r ~col:c)
    | None -> ()
  in
  let init () = (ref 0, fresh_state ()) in
  let merge (star_a, st_a) (star_b, st_b) =
    star_a := !star_a + !star_b;
    merge_state st_a st_b;
    (star_a, st_a)
  in
  let star, st =
    match pool with
    | Some pool when n > chunk ->
        Pool.parallel_reduce ~chunk pool ~init ~body ~merge ~lo:0 ~hi:n
    | _ ->
        let acc = init () in
        let lo = ref 0 in
        while !lo < n do
          let hi = min n (!lo + chunk) in
          let part = if !lo = 0 then acc else init () in
          for r = !lo to hi - 1 do
            body part r
          done;
          if part != acc then ignore (merge acc part);
          lo := hi
        done;
        acc
  in
  finish agg (!star, st)
