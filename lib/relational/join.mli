(** Equi-joins between tables. The building block behind edge-view
    creation (Eq. 2: S ⋈ σ(A) ⋈ T) and the relational half of GraQL.

    With a pool, the join runs shard-parallel in three phases: a parallel
    radix partition of the (smaller) build side into 2^k open-addressed
    int tables, one build task per partition, then a chunk-parallel probe
    whose per-chunk pair accumulators concatenate in chunk order. The
    output is byte-identical to the sequential path for every pool size:
    matches appear in probe-row order, and within a probe row in
    build-row order. *)

module Table = Graql_storage.Table

val hash_join :
  ?pool:Graql_parallel.Domain_pool.t ->
  ?name:string ->
  left:Table.t ->
  right:Table.t ->
  on:(int * int) list ->
  unit ->
  Table.t
(** Inner equi-join: [on] pairs (left column, right column). Output schema
    is the concatenation (right-hand name clashes suffixed). Null keys
    never join (SQL semantics). Builds the hash table on the smaller
    input; probe order follows the larger input's row order, so output is
    deterministic and independent of the pool size. Output columns are
    materialized columnar (parallel when a pool is given), sharing
    dictionaries with the inputs. *)

val join_rows :
  ?pool:Graql_parallel.Domain_pool.t ->
  left:Table.t ->
  right:Table.t ->
  on:(int * int) list ->
  unit ->
  int array * int array
(** Matching rows as parallel (left rows, right rows) arrays, without
    materializing an output table. *)

val join_pairs :
  ?pool:Graql_parallel.Domain_pool.t ->
  left:Table.t ->
  right:Table.t ->
  on:(int * int) list ->
  unit ->
  (int * int) array
(** [join_rows] zipped into (left row, right row) tuples. *)

val semi_join_left :
  ?pool:Graql_parallel.Domain_pool.t ->
  left:Table.t ->
  right:Table.t ->
  on:(int * int) list ->
  unit ->
  int array
(** Left rows that have at least one match, ascending. Single-column
    Int/Date/dict-Varchar keys probe an int hash set (no per-row key
    strings); the probe runs chunk-parallel when a pool is given. *)

val par_threshold : int ref
(** Minimum combined row count before a pool is actually used; below it
    the sequential single-partition path wins. Exposed for tests. *)

val use_int_fast : bool ref
(** When cleared, single-column int-payload joins fall back to the generic
    string-key row-at-a-time path. Exposed so property tests can compare
    the batched kernels against the reference implementation. *)
