module Table = Graql_storage.Table
module Column = Graql_storage.Column
module Value = Graql_storage.Value
module Schema = Graql_storage.Schema
module Pool = Graql_parallel.Domain_pool
module Int_vec = Graql_util.Int_vec

(* Master switch for the batch kernels (selection-vector scans and
   columnar gather materialization). Row-at-a-time execution remains the
   reference implementation; tests and benchmarks flip this to compare
   the two paths byte for byte. *)
let vectorized = ref true

let select_indices ?pool table pred =
  let n = Table.nrows table in
  (* Batch path: chunked tri-mask evaluation over raw payloads. Falls
     back to the compiled per-row closure, then to the generic
     evaluator (all three are property-tested equivalent). *)
  let batch =
    if !vectorized then Fast_pred.compile_batch table pred else None
  in
  match batch with
  | Some mk -> (
      match pool with
      | Some pool when n >= 4096 ->
          let ranges = Array.of_list (Pool.chunk_ranges pool ~lo:0 ~hi:n ()) in
          let outs = Array.map (fun _ -> Int_vec.create ()) ranges in
          Pool.run_tasks pool
            (Array.to_list
               (Array.mapi
                  (fun i (lo, hi) () ->
                    (* Instantiate per task: each runner owns private
                       mask buffers. *)
                    let run = mk () in
                    run ~lo ~hi outs.(i))
                  ranges));
          let acc = Int_vec.create () in
          Array.iter (fun o -> Int_vec.append acc o) outs;
          Int_vec.to_array acc
      | _ ->
          let out = Int_vec.create () in
          (mk ()) ~lo:0 ~hi:n out;
          Int_vec.to_array out)
  | None -> (
      let row_test =
        match Fast_pred.compile table pred with
        | Some fast -> fast
        | None ->
            fun i ->
              let get c = Table.get table ~row:i ~col:c in
              Row_expr.eval_bool get pred
      in
      let eval_range lo hi out =
        for i = lo to hi - 1 do
          if row_test i then Int_vec.push out i
        done
      in
      match pool with
      | Some pool when n >= 4096 ->
          let acc =
            Pool.parallel_reduce pool
              ~init:(fun () -> Int_vec.create ())
              ~body:(fun out i -> if row_test i then Int_vec.push out i)
              ~merge:(fun a b ->
                Int_vec.append a b;
                a)
              ~lo:0 ~hi:n
          in
          Int_vec.to_array acc
      | Some _ | None ->
          let out = Int_vec.create () in
          eval_range 0 n out;
          Int_vec.to_array out)

(* Columnar materialization: gather each output column from the source
   payload at the selected rows (dictionaries shared), instead of boxing
   every cell through a Value round-trip. *)
let gather_rows ?name table rows =
  let name = match name with Some n -> n | None -> Table.name table in
  let schema = Table.schema table in
  let n = Array.length rows in
  if Table.arity table = 0 then Table.create ~name schema
  else
    let cols =
      Array.init (Table.arity table) (fun i ->
          let src = Table.column table i in
          let dst = Column.create_sized ~share_dict_of:src (Column.dtype src) n in
          Column.gather_into ~src ~rows ~dst ~lo:0 ~hi:n;
          dst)
    in
    Table.of_columns ~name schema cols

let materialize ?name table rows =
  if !vectorized then gather_rows ?name table rows
  else begin
    let name = match name with Some n -> n | None -> Table.name table in
    let out = Table.create ~name (Table.schema table) in
    Array.iter (fun r -> Table.append_row_array out (Table.row table r)) rows;
    out
  end

let select ?pool ?name table pred =
  materialize ?name table (select_indices ?pool table pred)

let project ?name table cols =
  let schema = Table.schema table in
  let out_schema =
    Schema.make
      (List.map
         (fun c ->
           { Schema.name = Schema.col_name schema c; dtype = Schema.col_dtype schema c })
         cols)
  in
  let name = match name with Some n -> n | None -> Table.name table in
  if !vectorized then begin
    let n = Table.nrows table in
    let rows = Array.init n Fun.id in
    let out_cols =
      Array.of_list
        (List.map
           (fun c ->
             let src = Table.column table c in
             let dst =
               Column.create_sized ~share_dict_of:src (Column.dtype src) n
             in
             Column.gather_into ~src ~rows ~dst ~lo:0 ~hi:n;
             dst)
           cols)
    in
    Table.of_columns ~name out_schema out_cols
  end
  else begin
    let out = Table.create ~name out_schema in
    let cols = Array.of_list cols in
    Table.iter_rows
      (fun r ->
        Table.append_row_array out
          (Array.map (fun c -> Table.get table ~row:r ~col:c) cols))
      table;
    out
  end

let project_named ?name table specs =
  let out_schema =
    Schema.make
      (List.map (fun (n, dt, _) -> { Schema.name = n; dtype = dt }) specs)
  in
  let name = match name with Some n -> n | None -> Table.name table in
  if !vectorized then begin
    (* Column-at-a-time: plain column references gather unboxed (sharing
       dictionaries); computed expressions evaluate row-wise into their
       own column. Identical values, no whole-row boxing for the common
       reorder/rename projections. *)
    let n = Table.nrows table in
    let schema = Table.schema table in
    let identity = lazy (Array.init n Fun.id) in
    let cols =
      List.map
        (fun (cname, dt, e) ->
          match e with
          | Row_expr.Col i
            when i >= 0 && i < Table.arity table
                 && Schema.col_dtype schema i = dt ->
              let src = Table.column table i in
              let dst = Column.create_sized ~share_dict_of:src dt n in
              Column.gather_into ~src ~rows:(Lazy.force identity) ~dst ~lo:0
                ~hi:n;
              dst
          | _ ->
              let c = Column.create ~expected:(max 16 n) dt in
              for r = 0 to n - 1 do
                let get cc = Table.get table ~row:r ~col:cc in
                try Column.append c (Row_expr.eval get e)
                with Failure msg ->
                  failwith
                    (Printf.sprintf "table %s, column %s: %s" name cname msg)
              done;
              c)
        specs
    in
    Table.of_columns ~name out_schema (Array.of_list cols)
  end
  else begin
    let out = Table.create ~name out_schema in
    let exprs = Array.of_list (List.map (fun (_, _, e) -> e) specs) in
    Table.iter_rows
      (fun r ->
        let get c = Table.get table ~row:r ~col:c in
        Table.append_row_array out (Array.map (Row_expr.eval get) exprs))
      table;
    out
  end

(* Row-equality hashing for distinct / group by: hash the value tuple. *)
let row_key table r =
  Array.map Value.to_string (Table.row table r) |> Array.to_list

let distinct ?name table =
  let seen = Hashtbl.create 256 in
  let keep = Int_vec.create () in
  Table.iter_rows
    (fun r ->
      let key = row_key table r in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        Int_vec.push keep r
      end)
    table;
  materialize ?name table (Int_vec.to_array keep)

type dir = Asc | Desc

let compare_rows table keys a b =
  let rec go = function
    | [] -> compare a b (* stability by row id *)
    | (col, dir) :: rest ->
        let va = Table.get table ~row:a ~col
        and vb = Table.get table ~row:b ~col in
        let c = Value.compare va vb in
        let c = match dir with Asc -> c | Desc -> -c in
        if c <> 0 then c else go rest
  in
  go keys

let order_by ?name table keys =
  let n = Table.nrows table in
  let idx = Array.init n (fun i -> i) in
  Array.sort (compare_rows table keys) idx;
  materialize ?name table idx

let top_n ?name table ~n ~keys =
  (* Keep the n smallest under the requested ordering: invert the
     comparison for the max-keeping heap. *)
  let cmp a b = compare_rows table keys b a in
  let heap = Graql_util.Topk.create ~k:n ~cmp in
  Table.iter_rows (fun r -> Graql_util.Topk.add heap r) table;
  materialize ?name table (Array.of_list (Graql_util.Topk.to_sorted_list heap))

let limit ?name table n =
  let n = min n (Table.nrows table) in
  materialize ?name table (Array.init n (fun i -> i))

let union_all ?name a b =
  let sa = Table.schema a and sb = Table.schema b in
  if Schema.arity sa <> Schema.arity sb then
    failwith "union: arity mismatch";
  Array.iteri
    (fun i ca ->
      let cb = (Schema.cols sb).(i) in
      if not (Graql_storage.Dtype.compatible ca.Schema.dtype cb.Schema.dtype) then
        failwith
          (Printf.sprintf "union: column %d type mismatch (%s vs %s)" i
             (Graql_storage.Dtype.to_string ca.Schema.dtype)
             (Graql_storage.Dtype.to_string cb.Schema.dtype)))
    (Schema.cols sa);
  let name = match name with Some n -> n | None -> Table.name a in
  let out = Table.create ~name sa in
  Table.iter_rows (fun r -> Table.append_row_array out (Table.row a r)) a;
  Table.iter_rows (fun r -> Table.append_row_array out (Table.row b r)) b;
  out
