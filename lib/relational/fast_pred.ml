module Table = Graql_storage.Table
module Column = Graql_storage.Column
module Value = Graql_storage.Value
module Dtype = Graql_storage.Dtype
module Int_vec = Graql_util.Int_vec

(* Three-valued result, SQL-style. *)
type tri = T | F | N

let tri_and a b =
  match (a, b) with
  | F, _ | _, F -> F
  | T, T -> T
  | _ -> N

let tri_or a b =
  match (a, b) with
  | T, _ | _, T -> T
  | F, F -> F
  | _ -> N

let tri_not = function T -> F | F -> T | N -> N

let rec compilable = function
  | Row_expr.Cmp (_, Row_expr.Col _, Row_expr.Const _)
  | Row_expr.Cmp (_, Row_expr.Const _, Row_expr.Col _)
  | Row_expr.Cmp (_, Row_expr.Col _, Row_expr.Col _) ->
      true
  | Row_expr.IsNull (Row_expr.Col _) -> true
  | Row_expr.Like (Row_expr.Col _, _) -> true
  | Row_expr.Const _ -> true
  | Row_expr.And (a, b) | Row_expr.Or (a, b) -> compilable a && compilable b
  | Row_expr.Not a -> compilable a
  | Row_expr.Col _ | Row_expr.Cmp _ | Row_expr.Arith _ | Row_expr.IsNull _
  | Row_expr.Like _ ->
      false

(* One flat closure per operator: no inner test-closure indirection on
   the per-row path. *)
let int_atom c op k =
  let open Row_expr in
  match op with
  | Eq -> fun row -> if Column.is_null c row then N else if Column.get_int c row = k then T else F
  | Ne -> fun row -> if Column.is_null c row then N else if Column.get_int c row <> k then T else F
  | Lt -> fun row -> if Column.is_null c row then N else if Column.get_int c row < k then T else F
  | Le -> fun row -> if Column.is_null c row then N else if Column.get_int c row <= k then T else F
  | Gt -> fun row -> if Column.is_null c row then N else if Column.get_int c row > k then T else F
  | Ge -> fun row -> if Column.is_null c row then N else if Column.get_int c row >= k then T else F

let float_atom c op k =
  let open Row_expr in
  match op with
  | Eq -> fun row -> if Column.is_null c row then N else if Column.get_float c row = k then T else F
  | Ne -> fun row -> if Column.is_null c row then N else if Column.get_float c row <> k then T else F
  | Lt -> fun row -> if Column.is_null c row then N else if Column.get_float c row < k then T else F
  | Le -> fun row -> if Column.is_null c row then N else if Column.get_float c row <= k then T else F
  | Gt -> fun row -> if Column.is_null c row then N else if Column.get_float c row > k then T else F
  | Ge -> fun row -> if Column.is_null c row then N else if Column.get_float c row >= k then T else F

let flip op =
  match op with
  | Row_expr.Lt -> Row_expr.Gt
  | Row_expr.Gt -> Row_expr.Lt
  | Row_expr.Le -> Row_expr.Ge
  | Row_expr.Ge -> Row_expr.Le
  | (Row_expr.Eq | Row_expr.Ne) as op -> op

let holds op c =
  match op with
  | Row_expr.Eq -> c = 0
  | Row_expr.Ne -> c <> 0
  | Row_expr.Lt -> c < 0
  | Row_expr.Le -> c <= 0
  | Row_expr.Gt -> c > 0
  | Row_expr.Ge -> c >= 0

(* Compile one column-vs-constant comparison to a tri-valued row test. *)
let atom table op col const : (int -> tri) option =
  if col < 0 || col >= Table.arity table then None
  else
    let c = Table.column table col in
    match (Column.dtype c, const) with
    | Dtype.Int, Value.Int k | Dtype.Date, Value.Date k ->
        Some (int_atom c op k)
    | Dtype.Int, Value.Float _ | Dtype.Float, (Value.Int _ | Value.Float _) ->
        (* Generic evaluation compares Int and Float numerically. Date vs
           Int/Float is NOT numeric there (distinct ranks), so those
           combinations fall back to the generic path. *)
        Some (float_atom c op (Value.as_float const))
    | Dtype.Bool, Value.Bool b -> (
        let k = if b then 1 else 0 in
        match op with
        | Row_expr.Eq | Row_expr.Ne -> Some (int_atom c op k)
        | _ -> None)
    | Dtype.Varchar _, Value.Str s -> (
        (* Equality against a constant resolves to one dictionary id. *)
        match op with
        | Row_expr.Eq -> (
            match Column.intern_id c s with
            | Some id -> Some (int_atom c Row_expr.Eq id)
            | None -> Some (fun row -> if Column.is_null c row then N else F))
        | Row_expr.Ne -> (
            match Column.intern_id c s with
            | Some id -> Some (int_atom c Row_expr.Ne id)
            | None -> Some (fun row -> if Column.is_null c row then N else T))
        | _ ->
            (* Ordered comparisons need string order, which dictionary ids
               do not preserve: fall back. *)
            None)
    | _, Value.Null -> Some (fun _ -> N)
    | _ -> None

(* Column-vs-column comparison. Matches the generic evaluator exactly:
   int payloads compare as ints, any Float operand compares under
   [Float.compare] (Value.compare's total order, NaN included), and
   Varchar pairs compare as dictionary ids — only valid for eq/ne and only
   when both columns share one intern pool. *)
let atom_cc table op ca cb : (int -> tri) option =
  if ca < 0 || ca >= Table.arity table || cb < 0 || cb >= Table.arity table
  then None
  else
    let a = Table.column table ca and b = Table.column table cb in
    let guard test row =
      if Column.is_null a row || Column.is_null b row then N
      else if test row then T
      else F
    in
    match (Column.dtype a, Column.dtype b) with
    | Dtype.Int, Dtype.Int | Dtype.Date, Dtype.Date | Dtype.Bool, Dtype.Bool
      ->
        Some
          (guard (fun row ->
               holds op (Int.compare (Column.get_int a row) (Column.get_int b row))))
    | (Dtype.Int | Dtype.Float), Dtype.Float | Dtype.Float, Dtype.Int ->
        Some
          (guard (fun row ->
               holds op
                 (Float.compare (Column.get_float a row) (Column.get_float b row))))
    | Dtype.Varchar _, Dtype.Varchar _
      when Column.same_dict a b
           && (op = Row_expr.Eq || op = Row_expr.Ne) ->
        Some
          (guard (fun row ->
               holds op (Int.compare (Column.get_int a row) (Column.get_int b row))))
    | _ -> None

(* LIKE over a dictionary-encoded Varchar column: resolve the pattern
   against every dictionary entry once at compile time, then each row is a
   byte-table lookup on its id. Ids past the compile-time dictionary size
   (strings interned later through a shared pool) re-run the matcher. *)
let atom_like table col pattern : (int -> tri) option =
  if col < 0 || col >= Table.arity table then None
  else
    let c = Table.column table col in
    match Column.dtype c with
    | Dtype.Varchar _ ->
        let n = Column.dict_size c in
        let tbl = Bytes.create (max n 1) in
        for id = 0 to n - 1 do
          Bytes.unsafe_set tbl id
            (if Row_expr.like_match pattern (Column.dict_lookup c id) then
               '\001'
             else '\000')
        done;
        Some
          (fun row ->
            if Column.is_null c row then N
            else
              let id = Column.get_int c row in
              if id < n then
                if Bytes.unsafe_get tbl id = '\001' then T else F
              else if Row_expr.like_match pattern (Column.dict_lookup c id)
              then T
              else F)
    | _ -> None

let rec compile_tri table expr : (int -> tri) option =
  match expr with
  | Row_expr.Const (Value.Bool true) -> Some (fun _ -> T)
  | Row_expr.Const (Value.Bool false) -> Some (fun _ -> F)
  | Row_expr.Const Value.Null -> Some (fun _ -> N)
  | Row_expr.Const _ -> None
  | Row_expr.Cmp (op, Row_expr.Col i, Row_expr.Const v) -> atom table op i v
  | Row_expr.Cmp (op, Row_expr.Const v, Row_expr.Col i) ->
      atom table (flip op) i v
  | Row_expr.Cmp (op, Row_expr.Col i, Row_expr.Col j) -> atom_cc table op i j
  | Row_expr.IsNull (Row_expr.Col i) ->
      if i < 0 || i >= Table.arity table then None
      else
        let c = Table.column table i in
        Some (fun row -> if Column.is_null c row then T else F)
  | Row_expr.Like (Row_expr.Col i, pattern) -> atom_like table i pattern
  | Row_expr.And (a, b) -> (
      match (compile_tri table a, compile_tri table b) with
      | Some fa, Some fb -> Some (fun row -> tri_and (fa row) (fb row))
      | _ -> None)
  | Row_expr.Or (a, b) -> (
      match (compile_tri table a, compile_tri table b) with
      | Some fa, Some fb -> Some (fun row -> tri_or (fa row) (fb row))
      | _ -> None)
  | Row_expr.Not a ->
      Option.map (fun fa row -> tri_not (fa row)) (compile_tri table a)
  | Row_expr.Col _ | Row_expr.Cmp _ | Row_expr.Arith _ | Row_expr.IsNull _
  | Row_expr.Like _ ->
      None

let compile table expr =
  Option.map
    (fun f row -> match f row with T -> true | F | N -> false)
    (compile_tri table expr)

(* ------------------------------------------------------------------ *)
(* Batch (vectorized) evaluation.

   The chunk evaluator fills a tri-code mask (one byte per row: 0 = F,
   1 = T, 2 = N) with tight loops over the raw column payloads — no
   closure dispatch, bounds check, or payload match per row — then
   combines sub-expression masks bytewise and compacts the final mask
   into a selection vector. Null bitmaps are overlaid per chunk, only
   when the column has ever seen a null. *)

let batch_chunk = 4096

(* Tri-code truth tables, indexed a*3+b. *)
let and_tbl = "\000\000\000\000\001\002\000\002\002"
let or_tbl = "\000\001\002\001\001\001\002\001\002"

type filler = lo:int -> hi:int -> Bytes.t -> unit
(* Fills mask.(i - lo) for i in [lo, hi); hi - lo <= batch_chunk. *)

(* A compiled batch node is a maker: shared, immutable pre-computation
   (resolved constants, LIKE dictionary tables) lives in the outer
   closure; calling the maker allocates the private scratch buffers, so
   one compilation can be instantiated independently per domain. *)
type maker = unit -> filler

let code_true = '\001'
let code_false = '\000'
let code_null = '\002'

let fill_const code : filler =
 fun ~lo ~hi mask -> Bytes.fill mask 0 (hi - lo) code

(* Overlay null bits: any row whose null bit is set becomes N, whatever
   the payload comparison said about its (meaningless) slot value. *)
let overlay_nulls c (fill : filler) : filler =
  if not (Column.has_nulls c) then fill
  else
    let nb = Column.null_mask c in
    fun ~lo ~hi mask ->
      fill ~lo ~hi mask;
      for i = lo to hi - 1 do
        if
          Char.code (Bytes.unsafe_get nb (i lsr 3)) land (1 lsl (i land 7))
          <> 0
        then Bytes.unsafe_set mask (i - lo) code_null
      done

let set_bool mask j b =
  Bytes.unsafe_set mask j (if b then code_true else code_false)

(* Int payload vs constant: one loop per operator so the comparison is a
   branch on unboxed ints, not a closure call. *)
let int_cmp_fill data op k : filler =
  let open Row_expr in
  match op with
  | Eq ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo) (Array.unsafe_get data i = k)
        done
  | Ne ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo) (Array.unsafe_get data i <> k)
        done
  | Lt ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo) (Array.unsafe_get data i < k)
        done
  | Le ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo) (Array.unsafe_get data i <= k)
        done
  | Gt ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo) (Array.unsafe_get data i > k)
        done
  | Ge ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo) (Array.unsafe_get data i >= k)
        done

(* Float payload vs constant: IEEE comparison operators, matching the
   per-row [float_atom] exactly. *)
let float_cmp_fill data op k : filler =
  let open Row_expr in
  match op with
  | Eq ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo) (Array.unsafe_get data i = k)
        done
  | Ne ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo) (Array.unsafe_get data i <> k)
        done
  | Lt ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo) (Array.unsafe_get data i < k)
        done
  | Le ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo) (Array.unsafe_get data i <= k)
        done
  | Gt ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo) (Array.unsafe_get data i > k)
        done
  | Ge ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo) (Array.unsafe_get data i >= k)
        done

(* Int column vs float constant: convert per element (the per-row path
   goes through [get_float], same conversion). *)
let int_as_float_cmp_fill data op k : filler =
  let open Row_expr in
  match op with
  | Eq ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo) (float_of_int (Array.unsafe_get data i) = k)
        done
  | Ne ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo) (float_of_int (Array.unsafe_get data i) <> k)
        done
  | Lt ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo) (float_of_int (Array.unsafe_get data i) < k)
        done
  | Le ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo) (float_of_int (Array.unsafe_get data i) <= k)
        done
  | Gt ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo) (float_of_int (Array.unsafe_get data i) > k)
        done
  | Ge ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo) (float_of_int (Array.unsafe_get data i) >= k)
        done

(* Int payload vs int payload (col-col). *)
let cc_int_fill da db op : filler =
  let open Row_expr in
  match op with
  | Eq ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo)
            (Array.unsafe_get da i = Array.unsafe_get db i)
        done
  | Ne ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo)
            (Array.unsafe_get da i <> Array.unsafe_get db i)
        done
  | Lt ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo)
            (Array.unsafe_get da i < Array.unsafe_get db i)
        done
  | Le ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo)
            (Array.unsafe_get da i <= Array.unsafe_get db i)
        done
  | Gt ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo)
            (Array.unsafe_get da i > Array.unsafe_get db i)
        done
  | Ge ->
      fun ~lo ~hi mask ->
        for i = lo to hi - 1 do
          set_bool mask (i - lo)
            (Array.unsafe_get da i >= Array.unsafe_get db i)
        done

(* Col-col with a Float operand: mirror [atom_cc]'s total order by going
   through Float.compare per element (NaN-correct; these comparisons are
   rare enough that exactness beats squeezing the last branch out). *)
let cc_float_fill geta getb op : filler =
 fun ~lo ~hi mask ->
  for i = lo to hi - 1 do
    set_bool mask (i - lo) (holds op (Float.compare (geta i) (getb i)))
  done

let mask_combine tbl a b n =
  for i = 0 to n - 1 do
    let ca = Char.code (Bytes.unsafe_get a i)
    and cb = Char.code (Bytes.unsafe_get b i) in
    Bytes.unsafe_set a i (String.unsafe_get tbl ((ca * 3) + cb))
  done

(* Batch compile of one column-vs-constant atom; must mirror [atom]'s
   typing decisions case for case. *)
let batch_atom table op col const : maker option =
  if col < 0 || col >= Table.arity table then None
  else
    let c = Table.column table col in
    let with_nulls fill = Some (fun () -> overlay_nulls c fill) in
    match (Column.dtype c, const) with
    | Dtype.Int, Value.Int k | Dtype.Date, Value.Date k ->
        with_nulls (int_cmp_fill (Column.int_data c) op k)
    | Dtype.Int, Value.Float _ ->
        with_nulls
          (int_as_float_cmp_fill (Column.int_data c) op (Value.as_float const))
    | Dtype.Float, (Value.Int _ | Value.Float _) ->
        with_nulls
          (float_cmp_fill (Column.float_data c) op (Value.as_float const))
    | Dtype.Bool, Value.Bool b -> (
        let k = if b then 1 else 0 in
        match op with
        | Row_expr.Eq | Row_expr.Ne ->
            with_nulls (int_cmp_fill (Column.int_data c) op k)
        | _ -> None)
    | Dtype.Varchar _, Value.Str s -> (
        match op with
        | Row_expr.Eq -> (
            match Column.intern_id c s with
            | Some id ->
                with_nulls (int_cmp_fill (Column.int_data c) Row_expr.Eq id)
            | None -> with_nulls (fill_const code_false))
        | Row_expr.Ne -> (
            match Column.intern_id c s with
            | Some id ->
                with_nulls (int_cmp_fill (Column.int_data c) Row_expr.Ne id)
            | None -> with_nulls (fill_const code_true))
        | _ -> None)
    | _, Value.Null -> Some (fun () -> fill_const code_null)
    | _ -> None

let overlay_nulls2 a b fill =
  overlay_nulls a (overlay_nulls b fill)

let batch_atom_cc table op ca cb : maker option =
  if ca < 0 || ca >= Table.arity table || cb < 0 || cb >= Table.arity table
  then None
  else
    let a = Table.column table ca and b = Table.column table cb in
    match (Column.dtype a, Column.dtype b) with
    | Dtype.Int, Dtype.Int | Dtype.Date, Dtype.Date | Dtype.Bool, Dtype.Bool
      ->
        Some
          (fun () ->
            overlay_nulls2 a b
              (cc_int_fill (Column.int_data a) (Column.int_data b) op))
    | (Dtype.Int | Dtype.Float), Dtype.Float | Dtype.Float, Dtype.Int ->
        let reader c =
          match Column.dtype c with
          | Dtype.Float ->
              let d = Column.float_data c in
              fun i -> Array.unsafe_get d i
          | _ ->
              let d = Column.int_data c in
              fun i -> float_of_int (Array.unsafe_get d i)
        in
        Some
          (fun () ->
            overlay_nulls2 a b (cc_float_fill (reader a) (reader b) op))
    | Dtype.Varchar _, Dtype.Varchar _
      when Column.same_dict a b
           && (op = Row_expr.Eq || op = Row_expr.Ne) ->
        Some
          (fun () ->
            overlay_nulls2 a b
              (cc_int_fill (Column.int_data a) (Column.int_data b) op))
    | _ -> None

let batch_atom_like table col pattern : maker option =
  if col < 0 || col >= Table.arity table then None
  else
    let c = Table.column table col in
    match Column.dtype c with
    | Dtype.Varchar _ ->
        let n = Column.dict_size c in
        let tbl = Bytes.create (max n 1) in
        for id = 0 to n - 1 do
          Bytes.unsafe_set tbl id
            (if Row_expr.like_match pattern (Column.dict_lookup c id) then
               '\001'
             else '\000')
        done;
        let data = Column.int_data c in
        let fill ~lo ~hi mask =
          for i = lo to hi - 1 do
            let id = Array.unsafe_get data i in
            Bytes.unsafe_set mask (i - lo)
              (if id < n then Bytes.unsafe_get tbl id
               else if
                 Row_expr.like_match pattern (Column.dict_lookup c id)
               then code_true
               else code_false)
          done
        in
        Some (fun () -> overlay_nulls c fill)
    | _ -> None

let rec compile_fill table expr : maker option =
  match expr with
  | Row_expr.Const (Value.Bool true) -> Some (fun () -> fill_const code_true)
  | Row_expr.Const (Value.Bool false) ->
      Some (fun () -> fill_const code_false)
  | Row_expr.Const Value.Null -> Some (fun () -> fill_const code_null)
  | Row_expr.Const _ -> None
  | Row_expr.Cmp (op, Row_expr.Col i, Row_expr.Const v) ->
      batch_atom table op i v
  | Row_expr.Cmp (op, Row_expr.Const v, Row_expr.Col i) ->
      batch_atom table (flip op) i v
  | Row_expr.Cmp (op, Row_expr.Col i, Row_expr.Col j) ->
      batch_atom_cc table op i j
  | Row_expr.IsNull (Row_expr.Col i) ->
      if i < 0 || i >= Table.arity table then None
      else
        let c = Table.column table i in
        if not (Column.has_nulls c) then
          Some (fun () -> fill_const code_false)
        else
          let nb = Column.null_mask c in
          Some
            (fun () ~lo ~hi mask ->
              for i = lo to hi - 1 do
                set_bool mask (i - lo)
                  (Char.code (Bytes.unsafe_get nb (i lsr 3))
                   land (1 lsl (i land 7))
                  <> 0)
              done)
  | Row_expr.Like (Row_expr.Col i, pattern) -> batch_atom_like table i pattern
  | Row_expr.And (a, b) -> (
      match (compile_fill table a, compile_fill table b) with
      | Some ma, Some mb ->
          Some
            (fun () ->
              let fa = ma () and fb = mb () in
              let scratch = Bytes.create batch_chunk in
              fun ~lo ~hi mask ->
                fa ~lo ~hi mask;
                fb ~lo ~hi scratch;
                mask_combine and_tbl mask scratch (hi - lo))
      | _ -> None)
  | Row_expr.Or (a, b) -> (
      match (compile_fill table a, compile_fill table b) with
      | Some ma, Some mb ->
          Some
            (fun () ->
              let fa = ma () and fb = mb () in
              let scratch = Bytes.create batch_chunk in
              fun ~lo ~hi mask ->
                fa ~lo ~hi mask;
                fb ~lo ~hi scratch;
                mask_combine or_tbl mask scratch (hi - lo))
      | _ -> None)
  | Row_expr.Not a ->
      Option.map
        (fun ma () ->
          let fa = ma () in
          fun ~lo ~hi mask ->
            fa ~lo ~hi mask;
            for i = 0 to hi - lo - 1 do
              (* not: T<->F, N fixed — code 2 - code except N. *)
              let c = Bytes.unsafe_get mask i in
              if c = code_true then Bytes.unsafe_set mask i code_false
              else if c = code_false then Bytes.unsafe_set mask i code_true
            done)
        (compile_fill table a)
  | Row_expr.Col _ | Row_expr.Cmp _ | Row_expr.Arith _ | Row_expr.IsNull _
  | Row_expr.Like _ ->
      None

let compile_batch table expr =
  match compile_fill table expr with
  | None -> None
  | Some mk ->
      Some
        (fun () ->
          let fill = mk () in
          let mask = Bytes.create batch_chunk in
          fun ~lo ~hi (out : Int_vec.t) ->
            let c = ref lo in
            while !c < hi do
              let ch = min hi (!c + batch_chunk) in
              fill ~lo:!c ~hi:ch mask;
              let base = !c in
              for i = base to ch - 1 do
                if Bytes.unsafe_get mask (i - base) = code_true then
                  Int_vec.push out i
              done;
              c := ch
            done)
