module Wal = Graql_engine.Wal
module Db_io = Graql_engine.Db_io
module Graql_error = Graql_engine.Graql_error
module Metrics = Graql_obs.Metrics
module Trace = Graql_obs.Trace
module Crc32 = Graql_util.Crc32
module Json = Graql_util.Json

let io_error fmt =
  Printf.ksprintf
    (fun msg -> raise (Graql_error.Error (Graql_error.Io msg)))
    fmt

(* ------------------------------------------------------------------ *)
(* Socket framing: the WAL's record framing over a stream socket       *)

let max_frame_bytes = 256 * 1024 * 1024

let write_frame fd payload =
  let b = Wal.frame payload in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception
          Unix.Unix_error
            ((Unix.EPIPE | Unix.ECONNRESET | Unix.ESHUTDOWN | Unix.EBADF), _, _)
        -> io_error "replication peer closed the connection mid-write"
  in
  go 0

(* Fill [buf] entirely. [`Eof] only when not a single byte arrived —
   a clean close between frames; anything partial is damage. *)
let read_exact ~what fd buf =
  let len = Bytes.length buf in
  let rec go off =
    if off >= len then `Ok
    else
      match Unix.read fd buf off (len - off) with
      | 0 ->
          if off = 0 then `Eof
          else io_error "replication stream ended mid-%s (%d of %d bytes)"
                 what off len
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          io_error "replication read timed out mid-%s" what
      | exception
          Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) ->
          if off = 0 then `Eof
          else io_error "replication connection reset mid-%s" what
  in
  go 0

let read_frame fd =
  let hdr = Bytes.create 8 in
  match read_exact ~what:"frame header" fd hdr with
  | `Eof -> None
  | `Ok ->
      let len = Int32.to_int (Bytes.get_int32_le hdr 0) land 0xFFFFFFFF in
      if len > max_frame_bytes then
        io_error "replication frame claims %d bytes (cap %d) — corrupt stream"
          len max_frame_bytes;
      let crc = Bytes.get_int32_le hdr 4 in
      let payload = Bytes.create len in
      (match read_exact ~what:"frame payload" fd payload with
      | `Eof -> io_error "replication stream ended mid-frame payload"
      | `Ok -> ());
      if Crc32.bytes payload <> crc then
        io_error "replication frame CRC mismatch — corrupt stream";
      Some payload

(* ------------------------------------------------------------------ *)
(* Protocol messages                                                   *)

type message =
  | Hello of { epoch : int; offset : int; crc : int32 }
  | Wal_chunk of { epoch : int; offset : int; records : int; data : bytes }
  | Advance of { epoch : int }
  | Snapshot of { epoch : int; files : (string * string) list }
  | Ack of { epoch : int; offset : int }

let tag_hello = 1
let tag_chunk = 2
let tag_advance = 3
let tag_snapshot = 4
let tag_ack = 5

module Wire = Graql_ir.Wire

let encode_message m =
  let w = Wire.writer () in
  (match m with
  | Hello { epoch; offset; crc } ->
      Wire.tag w tag_hello;
      Wire.varint w epoch;
      Wire.varint w offset;
      Wire.zigzag w (Int32.to_int crc)
  | Wal_chunk { epoch; offset; records; data } ->
      Wire.tag w tag_chunk;
      Wire.varint w epoch;
      Wire.varint w offset;
      Wire.varint w records;
      Wire.string w (Bytes.to_string data)
  | Advance { epoch } ->
      Wire.tag w tag_advance;
      Wire.varint w epoch
  | Snapshot { epoch; files } ->
      Wire.tag w tag_snapshot;
      Wire.varint w epoch;
      Wire.varint w (List.length files);
      List.iter
        (fun (name, contents) ->
          Wire.string w name;
          Wire.string w contents)
        files
  | Ack { epoch; offset } ->
      Wire.tag w tag_ack;
      Wire.varint w epoch;
      Wire.varint w offset);
  Wire.contents w

let decode_message payload =
  match
    let r = Wire.reader payload in
    let m =
      match Wire.read_tag r with
      | t when t = tag_hello ->
          let epoch = Wire.read_varint r in
          let offset = Wire.read_varint r in
          let crc = Int32.of_int (Wire.read_zigzag r) in
          Hello { epoch; offset; crc }
      | t when t = tag_chunk ->
          let epoch = Wire.read_varint r in
          let offset = Wire.read_varint r in
          let records = Wire.read_varint r in
          let data = Bytes.of_string (Wire.read_string r) in
          Wal_chunk { epoch; offset; records; data }
      | t when t = tag_advance -> Advance { epoch = Wire.read_varint r }
      | t when t = tag_snapshot ->
          let epoch = Wire.read_varint r in
          let n = Wire.read_varint r in
          let files = ref [] in
          for _ = 1 to n do
            let name = Wire.read_string r in
            let contents = Wire.read_string r in
            files := (name, contents) :: !files
          done;
          Snapshot { epoch; files = List.rev !files }
      | t when t = tag_ack ->
          let epoch = Wire.read_varint r in
          let offset = Wire.read_varint r in
          Ack { epoch; offset }
      | t ->
          raise
            (Wire.Corrupt (Printf.sprintf "unknown replication message tag %d" t))
    in
    if not (Wire.at_end r) then
      raise (Wire.Corrupt "trailing bytes inside replication message");
    m
  with
  | m -> m
  | exception Wire.Corrupt msg -> io_error "replication message: %s" msg

let send_message fd m = write_frame fd (encode_message m)

let recv_message fd =
  match read_frame fd with
  | None -> None
  | Some payload -> Some (decode_message payload)

(* ------------------------------------------------------------------ *)
(* Primary                                                             *)

let m_chunks = Metrics.counter ~help:"WAL chunks shipped to followers." "repl.chunks"
let m_ship_bytes =
  Metrics.counter ~help:"WAL bytes shipped to followers." "repl.bytes"
let m_snapshots =
  Metrics.counter ~help:"Full snapshot resyncs served to followers."
    "repl.snapshots"
let m_kicks =
  Metrics.counter
    ~help:"Followers disconnected for overflowing their send queue."
    "repl.queue_overflows"
let m_disconnects reason =
  Metrics.counter_l
    ~help:"Followers disconnected by the primary, by reason."
    "repl.disconnects" [ ("reason", reason) ]
let g_followers =
  Metrics.gauge ~help:"Currently connected replication followers."
    "repl.followers"

(* A stalled follower may queue this much before we cut it loose; it
   reconnects and catches up from the file instead. *)
let max_queue_bytes = 64 * 1024 * 1024

type fo = {
  fo_id : int;
  fo_fd : Unix.file_descr;
  fo_addr : string;
  fo_q : message Queue.t;
  fo_mu : Mutex.t;
  fo_cv : Condition.t;
  mutable fo_qbytes : int;
  mutable fo_closed : bool;
  mutable fo_exits : int;  (** sender+receiver domains done; 2 ⇒ close fd *)
  mutable fo_acked_epoch : int;
  mutable fo_acked_offset : int;
  mutable fo_last_trace : string;
      (** trace id of the last statement whose chunk was queued — the
          ack that follows is stitched into that trace *)
}

type primary = {
  p_wal : Wal.t;
  p_listen : Unix.file_descr;
  p_port : int;
  p_stop_r : Unix.file_descr;
  p_stop_w : Unix.file_descr;
  p_mu : Mutex.t;
  mutable p_followers : fo list;
  mutable p_next_id : int;
  mutable p_domains : unit Domain.t list;
  mutable p_accept : unit Domain.t option;
  mutable p_stopped : bool;
}

let message_weight = function
  | Wal_chunk { data; _ } -> 64 + Bytes.length data
  | Snapshot { files; _ } ->
      List.fold_left (fun a (n, c) -> a + String.length n + String.length c) 64
        files
  | Hello _ | Advance _ | Ack _ -> 64

(* Called with [fo_mu] NOT held. Safe under the WAL mutex (observer
   path): touches only this follower's own lock. *)
let enqueue fo msg =
  Mutex.lock fo.fo_mu;
  (if not fo.fo_closed then
     let w = message_weight msg in
     if fo.fo_qbytes + w > max_queue_bytes then begin
       (* Too far behind to buffer: cut it loose. The shutdown unblocks
          its sender/receiver domains; on reconnect the handshake
          catches it up from the file. Never silent: an operator should
          see a follower being kicked, and the disconnect counter makes
          it scrapeable. *)
       fo.fo_closed <- true;
       Metrics.incr m_kicks;
       Metrics.incr (m_disconnects "queue_overflow");
       Printf.eprintf
         "graql: warning: disconnecting follower %s: send queue overflow \
          (%d bytes queued, cap %d)\n%!"
         fo.fo_addr fo.fo_qbytes max_queue_bytes;
       try Unix.shutdown fo.fo_fd Unix.SHUTDOWN_ALL
       with Unix.Unix_error (_, _, _) -> ()
     end else begin
       Queue.push msg fo.fo_q;
       fo.fo_qbytes <- fo.fo_qbytes + w
     end);
  Condition.signal fo.fo_cv;
  Mutex.unlock fo.fo_mu

let mark_closed fo =
  Mutex.lock fo.fo_mu;
  if not fo.fo_closed then begin
    fo.fo_closed <- true;
    try Unix.shutdown fo.fo_fd Unix.SHUTDOWN_ALL
    with Unix.Unix_error (_, _, _) -> ()
  end;
  Condition.signal fo.fo_cv;
  Mutex.unlock fo.fo_mu

let unregister p fo =
  Mutex.lock p.p_mu;
  if List.memq fo p.p_followers then begin
    p.p_followers <- List.filter (fun f -> not (f == fo)) p.p_followers;
    Metrics.set_gauge g_followers (float_of_int (List.length p.p_followers))
  end;
  Mutex.unlock p.p_mu

(* Each follower has a sender and a receiver domain; whichever exits
   last closes the descriptor (never while the other may still use it). *)
let loop_exit p fo =
  mark_closed fo;
  unregister p fo;
  Mutex.lock fo.fo_mu;
  fo.fo_exits <- fo.fo_exits + 1;
  let last = fo.fo_exits >= 2 in
  Mutex.unlock fo.fo_mu;
  if last then
    try Unix.close fo.fo_fd with Unix.Unix_error (_, _, _) -> ()

let sender_loop p fo =
  let rec loop () =
    Mutex.lock fo.fo_mu;
    while Queue.is_empty fo.fo_q && not fo.fo_closed do
      Condition.wait fo.fo_cv fo.fo_mu
    done;
    if fo.fo_closed && Queue.is_empty fo.fo_q then Mutex.unlock fo.fo_mu
    else begin
      let msg = Queue.pop fo.fo_q in
      fo.fo_qbytes <- fo.fo_qbytes - message_weight msg;
      Mutex.unlock fo.fo_mu;
      match send_message fo.fo_fd msg with
      | () ->
          (match msg with
          | Wal_chunk { data; _ } ->
              Metrics.incr m_chunks;
              Metrics.add m_ship_bytes (Bytes.length data)
          | Snapshot _ -> Metrics.incr m_snapshots
          | Hello _ | Advance _ | Ack _ -> ());
          loop ()
      | exception Graql_error.Error (Graql_error.Io _) -> ()
    end
  in
  loop ();
  loop_exit p fo

let receiver_loop p fo =
  let rec loop () =
    match recv_message fo.fo_fd with
    | Some (Ack { epoch; offset }) ->
        Mutex.lock fo.fo_mu;
        fo.fo_acked_epoch <- epoch;
        fo.fo_acked_offset <- offset;
        let trace = fo.fo_last_trace in
        Mutex.unlock fo.fo_mu;
        (* Instant marker in the shipped statement's trace: the ack's
           arrival closes the durability loop for that statement. *)
        Trace.with_trace trace (fun () ->
            Trace.with_span ~cat:"repl"
              ~args:[ ("offset", string_of_int offset) ]
              "repl.ack"
              (fun () -> ()));
        loop ()
    | Some _ | None -> ()
    | exception Graql_error.Error (Graql_error.Io _) -> ()
  in
  loop ();
  loop_exit p fo

let string_of_sockaddr = function
  | Unix.ADDR_INET (a, p) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | Unix.ADDR_UNIX s -> s

let read_file_range path ~pos ~len =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      seek_in ic pos;
      Bytes.of_string (really_input_string ic len))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The full-resync payload: the epoch's completed checkpoint directory
   (when one exists — MANIFEST ordered last so a follower crash
   mid-install leaves an ignorable, not corrupt-looking, directory)
   followed by the first [size] bytes of the epoch's log. Read under
   the WAL lock, so the log cannot grow or advance underneath us. *)
let snapshot_files ~dir ~epoch ~size =
  let ckpt =
    let d = Filename.concat dir (Db_io.checkpoint_dir_name ~epoch) in
    if Sys.file_exists (Filename.concat d Db_io.manifest_name) then
      let names =
        Sys.readdir d |> Array.to_list
        |> List.filter (fun n -> n <> Db_io.manifest_name)
        |> List.sort compare
      in
      List.map
        (fun n ->
          ( Filename.concat (Db_io.checkpoint_dir_name ~epoch) n,
            read_file (Filename.concat d n) ))
        (names @ [ Db_io.manifest_name ])
    else []
  in
  let wal_file = Filename.concat dir (Wal.file_name ~epoch) in
  ckpt
  @ [ ( Wal.file_name ~epoch,
        Bytes.to_string (read_file_range wal_file ~pos:0 ~len:size) ) ]

(* Runs on the executing statement's domain (WAL observer, under the
   log mutex), so the ambient trace id is the statement's: the ship
   span lands in its trace, and the id is remembered per follower so
   the matching ack (on the receiver domain) can be stitched too. *)
let broadcast p ev =
  let msg =
    match ev with
    | Wal.Ev_append { epoch; offset; data; records } ->
        Wal_chunk { epoch; offset; records; data }
    | Wal.Ev_advance { epoch } -> Advance { epoch }
  in
  Trace.with_span ~cat:"repl" "repl.ship" @@ fun () ->
  let trace = Trace.current_trace () in
  Mutex.lock p.p_mu;
  let fos = p.p_followers in
  Mutex.unlock p.p_mu;
  List.iter
    (fun fo ->
      Mutex.lock fo.fo_mu;
      fo.fo_last_trace <- trace;
      Mutex.unlock fo.fo_mu;
      enqueue fo msg)
    fos

(* Handshake + registration. Runs on the accept domain; the [Wal.with_lock]
   window pins epoch/size/records and reads the file consistently, and —
   because observer events also fire under that lock — nothing can ship
   between the catch-up chunk and the follower joining the broadcast
   list. *)
let register p fd addr =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0
   with Unix.Unix_error (_, _, _) -> ());
  match recv_message fd with
  | Some (Hello { epoch; offset; crc }) ->
      (* Acks may take arbitrarily long to arrive; no receive timeout
         once registered. *)
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.0
       with Unix.Unix_error (_, _, _) -> ());
      let fo =
        Mutex.lock p.p_mu;
        let id = p.p_next_id in
        p.p_next_id <- id + 1;
        Mutex.unlock p.p_mu;
        {
          fo_id = id;
          fo_fd = fd;
          fo_addr = addr;
          fo_q = Queue.create ();
          fo_mu = Mutex.create ();
          fo_cv = Condition.create ();
          fo_qbytes = 0;
          fo_closed = false;
          fo_exits = 0;
          fo_acked_epoch = epoch;
          fo_acked_offset = offset;
          fo_last_trace = "";
        }
      in
      Wal.with_lock p.p_wal (fun () ->
          let pe = Wal.epoch p.p_wal in
          let ps = Wal.size p.p_wal in
          let pr = Wal.records p.p_wal in
          (* Same epoch and a plausible offset are not enough: a
             follower that lived through a different history (an
             ex-primary rejoining after a failover) can present both.
             The prefix CRC proves its bytes are OUR bytes; anything
             else gets a full resync. *)
          let prefix_matches () =
            offset = Wal.header_size
            || Crc32.bytes
                 (read_file_range (Wal.path p.p_wal) ~pos:0 ~len:offset)
               = crc
          in
          (if epoch = pe && offset >= Wal.header_size && offset <= ps
              && prefix_matches () then
             (* In-epoch catch-up from the file. An empty chunk still
                tells the follower the primary's record count. *)
             let data =
               if offset = ps then Bytes.create 0
               else
                 read_file_range (Wal.path p.p_wal) ~pos:offset
                   ~len:(ps - offset)
             in
             enqueue fo (Wal_chunk { epoch = pe; offset; records = pr; data })
           else
             enqueue fo
               (Snapshot
                  {
                    epoch = pe;
                    files =
                      snapshot_files ~dir:(Wal.dir p.p_wal) ~epoch:pe ~size:ps;
                  }));
          Mutex.lock p.p_mu;
          p.p_followers <- fo :: p.p_followers;
          Metrics.set_gauge g_followers
            (float_of_int (List.length p.p_followers));
          Mutex.unlock p.p_mu);
      let s = Domain.spawn (fun () -> sender_loop p fo) in
      let r = Domain.spawn (fun () -> receiver_loop p fo) in
      Mutex.lock p.p_mu;
      p.p_domains <- s :: r :: p.p_domains;
      Mutex.unlock p.p_mu
  | Some _ | None ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
  | exception Graql_error.Error (Graql_error.Io _) ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())

let accept_loop p =
  let rec loop () =
    match Unix.select [ p.p_listen; p.p_stop_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | readable, _, _ ->
        if List.mem p.p_stop_r readable then ()
        else begin
          (match Unix.accept p.p_listen with
          | exception Unix.Unix_error (_, _, _) -> ()
          | fd, addr -> register p fd (string_of_sockaddr addr));
          loop ()
        end
  in
  loop ()

let start_primary ?(host = "127.0.0.1") ~port wal =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen listen_fd 16
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error (_, _, _) -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let stop_r, stop_w = Unix.pipe () in
  let p =
    {
      p_wal = wal;
      p_listen = listen_fd;
      p_port = bound_port;
      p_stop_r = stop_r;
      p_stop_w = stop_w;
      p_mu = Mutex.create ();
      p_followers = [];
      p_next_id = 1;
      p_domains = [];
      p_accept = None;
      p_stopped = false;
    }
  in
  Wal.set_observer wal (Some (fun ev -> broadcast p ev));
  p.p_accept <- Some (Domain.spawn (fun () -> accept_loop p));
  p

let primary_port p = p.p_port

let follower_count p =
  Mutex.lock p.p_mu;
  let n = List.length p.p_followers in
  Mutex.unlock p.p_mu;
  n

let min_acked p =
  Mutex.lock p.p_mu;
  let fos = p.p_followers in
  Mutex.unlock p.p_mu;
  List.fold_left
    (fun acc fo ->
      Mutex.lock fo.fo_mu;
      let e = fo.fo_acked_epoch and o = fo.fo_acked_offset in
      Mutex.unlock fo.fo_mu;
      match acc with
      | None -> Some (e, o)
      | Some (be, bo) -> if (e, o) < (be, bo) then Some (e, o) else Some (be, bo))
    None fos

(* GRAQL_REPL_MAX_LAG (records, default 1000): the same threshold the
   follower uses to flip its own /readyz. The primary only *reports*;
   its readiness never depends on followers. *)
let max_lag_records () =
  match
    Option.bind (Sys.getenv_opt "GRAQL_REPL_MAX_LAG") int_of_string_opt
  with
  | Some n when n >= 0 -> n
  | Some _ | None -> 1000

(* Acks carry a byte offset, not a record count, so lag in records is
   estimated from the primary's own mean record size. An ex-epoch
   follower is behind by everything. *)
let readyz_health p =
  let epoch, size, records =
    Wal.with_lock p.p_wal (fun () ->
        (Wal.epoch p.p_wal, Wal.size p.p_wal, Wal.records p.p_wal))
  in
  let max_lag = max_lag_records () in
  let est_lag_records lag_bytes =
    if records = 0 || size <= Wal.header_size then 0
    else
      let avg =
        float_of_int (size - Wal.header_size) /. float_of_int records
      in
      int_of_float (ceil (float_of_int lag_bytes /. avg))
  in
  Mutex.lock p.p_mu;
  let fos = p.p_followers in
  Mutex.unlock p.p_mu;
  let lagging =
    List.filter_map
      (fun fo ->
        Mutex.lock fo.fo_mu;
        let fe = fo.fo_acked_epoch and fof = fo.fo_acked_offset in
        Mutex.unlock fo.fo_mu;
        let lag =
          if fe < epoch then records
          else est_lag_records (max 0 (size - fof))
        in
        if lag > max_lag then Some (fo.fo_addr, lag) else None)
      (List.rev fos)
  in
  match lagging with
  | [] -> ""
  | lagging ->
      String.concat ""
        (List.map
           (fun (addr, lag) ->
             Printf.sprintf
               "replication: follower %s lagging ~%d record(s) (max %d)\n"
               addr lag max_lag)
           lagging)

let status_json p =
  let epoch, size, records =
    Wal.with_lock p.p_wal (fun () ->
        (Wal.epoch p.p_wal, Wal.size p.p_wal, Wal.records p.p_wal))
  in
  Mutex.lock p.p_mu;
  let fos = p.p_followers in
  Mutex.unlock p.p_mu;
  let follower fo =
    Mutex.lock fo.fo_mu;
    let s =
      Printf.sprintf
        "{\"id\":%d,\"addr\":%s,\"acked_epoch\":%d,\"acked_offset\":%d,\"queued_bytes\":%d}"
        fo.fo_id (Json.quote fo.fo_addr) fo.fo_acked_epoch fo.fo_acked_offset
        fo.fo_qbytes
    in
    Mutex.unlock fo.fo_mu;
    s
  in
  Printf.sprintf
    "{\"role\":\"primary\",\"epoch\":%d,\"wal_bytes\":%d,\"wal_records\":%d,\"followers\":[%s]}"
    epoch size records
    (String.concat "," (List.map follower (List.rev fos)))

let stop_primary p =
  Mutex.lock p.p_mu;
  let already = p.p_stopped in
  p.p_stopped <- true;
  Mutex.unlock p.p_mu;
  if not already then begin
    Wal.set_observer p.p_wal None;
    (try ignore (Unix.write p.p_stop_w (Bytes.of_string "x") 0 1)
     with Unix.Unix_error (_, _, _) -> ());
    (match p.p_accept with Some d -> Domain.join d | None -> ());
    Mutex.lock p.p_mu;
    let fos = p.p_followers and doms = p.p_domains in
    Mutex.unlock p.p_mu;
    List.iter mark_closed fos;
    List.iter Domain.join doms;
    Metrics.set_gauge g_followers 0.0;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
      [ p.p_listen; p.p_stop_r; p.p_stop_w ]
  end
