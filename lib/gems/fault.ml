module Pool = Graql_parallel.Domain_pool
module Rng = Graql_util.Rng

type kind =
  | Fail
  | Slow of int (* milliseconds *)

type rule = {
  on_label : string option;
  on_index : int option;
  kind : kind;
  first_attempts : int;
  prob : float;
}

type t = { seed : int; rules : rule list }

let rule ?label ?index ?(attempts = 1) ?(prob = 1.0) kind =
  {
    on_label = label;
    on_index = index;
    kind;
    first_attempts = (if attempts < 0 then max_int else attempts);
    prob;
  }

let make ?(seed = 0) rules = { seed; rules }

let fail_once ?(seed = 0) () = { seed; rules = [ rule ~attempts:1 Fail ] }

let dead ?label ?index () =
  { seed = 0; rules = [ rule ?label ?index ~attempts:(-1) Fail ] }

let random ?(seed = 0) ?(prob = 0.25) () =
  { seed; rules = [ rule ~attempts:1 ~prob Fail ] }

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  nl = 0
  ||
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* The per-site coin is a pure function of (seed, label, index): whether a
   site is faulty never depends on scheduling order, so runs are
   reproducible at any domain count. *)
let site_coin t ~label ~index =
  let rng = Rng.make (Hashtbl.hash (t.seed, label, index)) in
  Rng.float rng 1.0

let matching_rule t ~label ~index ~attempt =
  List.find_opt
    (fun r ->
      attempt <= r.first_attempts
      && (match r.on_label with
         | Some l -> contains ~needle:(String.lowercase_ascii l)
                       (String.lowercase_ascii label)
         | None -> true)
      && (match r.on_index with Some i -> i = index | None -> true)
      && (r.prob >= 1.0 || site_coin t ~label ~index < r.prob))
    t.rules

let site_name ~label ~index =
  Printf.sprintf "%s/shard%d" (if label = "" then "anon" else label) index

let fire t ~label ~index ~attempt =
  match matching_rule t ~label ~index ~attempt with
  | None -> ()
  | Some { kind = Fail; _ } -> raise (Pool.Transient (site_name ~label ~index))
  | Some { kind = Slow ms; _ } ->
      if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.0)

let hook t ~label ~index ~attempt = fire t ~label ~index ~attempt

(* ------------------------------------------------------------------ *)
(* Environment-driven plans (CI)                                       *)

let env_seed_var = "GRAQL_FAULT_SEED"
let env_prob_var = "GRAQL_FAULT_PROB"

let of_env () =
  match Sys.getenv_opt env_seed_var with
  | None | Some "" -> None
  | Some s -> (
      match int_of_string_opt s with
      | None -> None
      | Some seed ->
          let prob =
            match Option.bind (Sys.getenv_opt env_prob_var) float_of_string_opt with
            | Some p when p > 0.0 && p <= 1.0 -> p
            | _ -> 0.25
          in
          Some (random ~seed ~prob ()))
