(** The GEMS wire server (DESIGN.md §14): many concurrent clients speak
    compiled {!Graql_ir} statements over TCP, framed exactly like WAL
    records ([len | crc32 | payload], {!Graql_engine.Wal.frame}).

    Concurrency discipline: read-only statements (selects with no [into]
    clause) run concurrently under {!Graql_engine.Db.read_locked},
    pinning the database epoch for the statement's lifetime; everything
    else — DDL, ingest, [set], select-into — runs exclusively under
    {!Graql_engine.Db.write_locked} with the WAL, so the accepted write
    log is totally ordered and a sequential replay of it reproduces
    every result byte-for-byte.

    Overload behaviour is bounded and typed: an admission controller
    enforces a global in-flight cap, a bounded wait queue with a wait
    deadline, and per-user quotas; saturation answers with a typed
    [S_shed] (reason + retry-after) instead of queueing unboundedly.
    Slow or byte-dribbling clients are reaped by per-frame read
    deadlines (the {!Graql_obs.Http.read_bounded} discipline); a
    graceful shutdown drains in-flight statements — every acknowledged
    result was durably logged — before the owner closes the WAL. *)

(** {2 Wire protocol} *)

module Proto : sig
  type client_msg =
    | C_hello of { user : string }
    | C_stmt of {
        id : int;
        deadline_ms : int;
        ir : bytes;
        trace : string;
        parent_span : int;
      }
        (** [deadline_ms = 0] means no deadline; [ir] is a compiled
            script blob ({!Graql_ir.Codec.encode_script}). [trace] /
            [parent_span] are the traceparent (DESIGN.md §16): the
            client's 128-bit trace id (hex; [""] = untraced) and the
            span to stitch the server's work beneath. They ride as
            optional trailing wire fields, so untraced statements keep
            the original frame bytes. *)
    | C_shutdown  (** admin-only: drain and stop the server *)

  type outcome_kind = K_table | K_subgraph | K_message | K_failed

  type remote_outcome = {
    ro_kind : outcome_kind;
    ro_code : int;  (** {!Graql_engine.Graql_error.exit_code} for
                        [K_failed]; 0 otherwise *)
    ro_text : string;  (** rendered table / subgraph summary / message /
                           error string *)
  }

  type server_msg =
    | S_hello of { role : string }
    | S_result of {
        id : int;
        epoch : int;  (** database epoch the statement observed (reads:
                          pinned epoch; writes: the epoch the write
                          created) *)
        wal_records : int;  (** WAL records present when the statement
                                completed (0 without durability) *)
        outcomes : remote_outcome list;
      }
    | S_error of { id : int; code : int; msg : string }
        (** statement- or connection-level typed failure; [code] is the
            {!Graql_engine.Graql_error.exit_code} of the class *)
    | S_shed of { id : int; reason : string; retry_after_ms : int }
        (** admission refused: ["user_quota"], ["queue_full"],
            ["queue_wait"], ["draining"] or ["connections"] *)
    | S_bye of { msg : string }  (** server closing this connection *)

  val max_frame_bytes : int
  (** Inbound client frames larger than this are refused with a typed
      [S_error] and the connection closed (the stream cannot be
      resynchronized). *)

  val encode_client : client_msg -> bytes
  val decode_client : bytes -> client_msg
  val encode_server : server_msg -> bytes
  val decode_server : bytes -> server_msg
  (** Decoders raise [Graql_error.Error (Io _)] on corrupt payloads. *)
end

(** {2 Server} *)

type config = {
  host : string;  (** default "127.0.0.1" *)
  port : int;  (** 0 picks an ephemeral port; see {!port} *)
  max_inflight : int;  (** statements executing concurrently *)
  max_queue : int;  (** statements waiting for an execution slot *)
  per_user_admitted : int;
      (** per-user cap on queued + executing statements *)
  max_connections : int;
  queue_wait_ms : int;  (** max wait for a slot before a typed shed *)
  read_timeout_s : float;
      (** a started frame must complete within this bound (slowloris
          reaping) *)
  idle_timeout_s : float;  (** allowed silence between statements *)
  default_deadline_ms : int;
      (** applied to statements that carry none; 0 = unlimited *)
  retry_after_ms : int;  (** hint stamped into [S_shed] replies *)
}

val default_config : config
(** [max_inflight = 4], [max_queue = 16], [per_user_admitted = 8],
    [max_connections = 64], [queue_wait_ms = 1000],
    [read_timeout_s = 5.], [idle_timeout_s = 60.], no default deadline,
    [retry_after_ms = 200]. *)

type t

val start : ?config:config -> Server.t -> t
(** Bind, pre-build the graph (so concurrent readers never race on the
    lazy build), and spawn the accept domain. User accounts must be
    registered ({!Server.add_user}) before [start]; the server reads
    them concurrently. *)

val port : t -> int
val connections : t -> int

val request_shutdown : t -> unit
(** Begin draining: new statements are shed with reason ["draining"],
    idle connections are told [S_bye], in-flight statements run to
    completion and their results are delivered. Idempotent;
    non-blocking. *)

val wait : t -> unit
(** Block until {!request_shutdown} is called (by a signal handler,
    an admin [C_shutdown], or another domain). *)

val stop : t -> unit
(** {!request_shutdown}, then join every connection (delivering
    in-flight results), the accept domain and the admission janitor,
    and close the listening socket. The session/WAL are NOT closed —
    the owner closes the WAL after [stop] returns, so nothing
    acknowledged can be lost. Idempotent. *)
