module Graql_error = Graql_engine.Graql_error
module Trace = Graql_obs.Trace
module Proto = Serve.Proto

let io_error fmt =
  Printf.ksprintf
    (fun msg -> raise (Graql_error.Error (Graql_error.Io msg)))
    fmt

type t = {
  cl_fd : Unix.file_descr;
  cl_role : string;
  mutable cl_next_id : int;
  mutable cl_closed : bool;
}

type reply =
  | Ok of {
      epoch : int;
      wal_records : int;
      outcomes : Proto.remote_outcome list;
    }
  | Shed of { reason : string; retry_after_ms : int }
  | Failed of { code : int; msg : string }
  | Closing of { msg : string }

let send fd msg = Repl.write_frame fd (Proto.encode_client msg)

let recv fd =
  match Repl.read_frame fd with
  | None -> io_error "server closed the connection"
  | Some payload -> Proto.decode_server payload

let connect ?(host = "127.0.0.1") ?(port = 7687) ~user () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
     io_error "cannot connect to %s:%d: %s" host port (Unix.error_message e));
  match
    send fd (Proto.C_hello { user });
    recv fd
  with
  | Proto.S_hello { role } ->
      { cl_fd = fd; cl_role = role; cl_next_id = 1; cl_closed = false }
  | Proto.S_error { msg; code; _ } ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      if code = Graql_error.exit_code (Graql_error.Denied "") then
        Graql_error.raise_error (Graql_error.Denied msg)
      else io_error "handshake refused: %s" msg
  | Proto.S_shed { reason; _ } ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      io_error "server refused the connection: %s" reason
  | _ ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      io_error "unexpected handshake reply"
  | exception e ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      raise e

let role t = t.cl_role

let reply_of_msg t expect_id = function
  | Proto.S_result { id; epoch; wal_records; outcomes } when id = expect_id ->
      ignore t;
      Ok { epoch; wal_records; outcomes }
  | Proto.S_error { id; code; msg } when id = expect_id || id = 0 ->
      Failed { code; msg }
  | Proto.S_shed { id; reason; retry_after_ms } when id = expect_id || id = 0
    ->
      Shed { reason; retry_after_ms }
  | Proto.S_bye { msg } -> Closing { msg }
  | _ -> io_error "reply for an unexpected statement id"

let run_ir ?(deadline_ms = 0) ?trace t blob =
  if t.cl_closed then io_error "client connection is closed";
  let id = t.cl_next_id in
  t.cl_next_id <- id + 1;
  (* The client is the trace root: with tracing armed, every statement
     gets a (fresh or ambient) trace id and a client.stmt span whose id
     rides to the server as the traceparent, so the server-side spans
     stitch beneath it. Untraced, both fields stay empty/zero and the
     frame bytes are unchanged. *)
  let trace =
    match trace with
    | Some tr -> tr
    | None ->
        let ambient = Trace.current_trace () in
        if ambient = "" && Trace.is_armed () then Trace.new_trace_id ()
        else ambient
  in
  Trace.with_trace trace @@ fun () ->
  let sp =
    Trace.begin_span ~cat:"client"
      ~args:[ ("stmt_id", string_of_int id) ]
      "client.stmt"
  in
  Fun.protect ~finally:(fun () -> Trace.end_span sp) @@ fun () ->
  send t.cl_fd
    (Proto.C_stmt
       { id; deadline_ms; ir = blob; trace; parent_span = Trace.span_id sp });
  reply_of_msg t id (recv t.cl_fd)

let run ?deadline_ms ?trace t source =
  let ast =
    try Graql_lang.Parser.parse_script source
    with Graql_lang.Loc.Syntax_error (loc, msg) ->
      Graql_error.raise_error (Graql_error.Parse (loc, msg))
  in
  run_ir ?deadline_ms ?trace t (Graql_ir.Codec.encode_script ast)

let shutdown t =
  if t.cl_closed then io_error "client connection is closed";
  send t.cl_fd Proto.C_shutdown;
  reply_of_msg t 0 (recv t.cl_fd)

let close t =
  if not t.cl_closed then begin
    t.cl_closed <- true;
    try Unix.close t.cl_fd with Unix.Unix_error (_, _, _) -> ()
  end

let reply_exit_code = function
  | Ok { outcomes; _ } ->
      List.fold_left
        (fun acc o -> if acc = 0 then o.Proto.ro_code else acc)
        0 outcomes
  | Failed { code; _ } -> code
  | Shed _ | Closing _ -> Graql_error.exit_code (Graql_error.Io "")
