(** The GEMS front-end server (Sec. III, component 2): "the server
    centralizes access to the database system in order to provide access
    control, distinct user accounts, as well as a central metadata
    repository (catalog)".

    One server owns one database session; clients connect under a user
    account and submit scripts. Admins may run anything; analysts are
    read-only (selects and parameter bindings — no DDL, no ingest). Every
    accepted statement is recorded in an audit log alongside per-user
    counters. *)

type role = Admin | Analyst

type t
type connection

exception Unknown_user of string

val create :
  ?pool:Graql_parallel.Domain_pool.t ->
  ?durability:Session.durability ->
  unit ->
  t
(** [durability] makes the server's database durable: recover-on-create
    plus write-ahead logging, exactly as {!Session.create}. *)

val session : t -> Session.t
(** The underlying session (the catalog/metadata repository). *)

val add_user : t -> name:string -> role:role -> unit
(** Raises [Failure] on duplicate user names. *)

val connect : t -> user:string -> connection
(** Raises {!Unknown_user}. *)

val user : connection -> string
val role : connection -> role

val writes_data : Graql_lang.Ast.stmt -> bool
(** The authorization-level write classifier: DDL and ingest write data;
    selects and parameter bindings do not. (The serve layer's
    concurrency classifier is stricter — [set] and select-[into] mutate
    session state even though they don't write data.) *)

val run :
  ?loader:(string -> string) ->
  ?deadline_ms:int ->
  ?trace:bool ->
  connection ->
  string ->
  (Graql_lang.Ast.stmt * Graql_engine.Script_exec.outcome) list
(** Parse, authorize every statement against the connection's role, then
    execute through the normal session pipeline. Raises
    [Graql_engine.Graql_error.Error (Denied _)] before anything executes
    if any statement exceeds the role — authorization is all-or-nothing
    per script. [deadline_ms] and [trace] are forwarded to
    {!Session.run_script}. *)

val stats : t -> Graql_obs.Metrics.snapshot
(** Metrics snapshot, as {!Session.stats}. *)

val serve_telemetry :
  ?host:string -> ?ready:bool -> port:int -> t -> Telemetry.t
(** Mount the operational HTTP endpoints ({!Telemetry.start}) on this
    server's session. Statements run through {!run} are attributed to
    their user in the structured query log. *)

val audit_log : t -> (string * string) list
(** (user, statement) pairs in submission order, most recent last; capped
    at 1000 entries — when the cap is exceeded the oldest entries are
    evicted first, while {!user_stats} counters keep counting. *)

val user_stats : t -> (string * int * int) list
(** Per user: (name, statements executed, scripts denied). *)
