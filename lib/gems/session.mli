(** The full GEMS pipeline for one client session (Sec. III):

    parse → static analysis against the catalog (front-end server) →
    compile to binary IR → "ship" to the backend (encode + decode) →
    dynamic planning and execution on the backend → results.

    Timings of each phase are recorded, so benchmarks can report front-end
    vs. backend cost separately. Failures surface as typed
    {!Graql_engine.Graql_error.t} values: pipeline-level problems (parse,
    strict-mode analysis rejection, corrupt IR) raise
    [Graql_error.Error]; per-statement execution failures come back as
    [O_failed] outcomes so the rest of the script still runs. *)

module Ast = Graql_lang.Ast

type durability =
  | Off  (** in-memory only; state dies with the process *)
  | Wal_dir of string
      (** durable in this directory: recover whatever it holds on
          create, then write-ahead-log every mutating statement and
          fold the log into checkpoints (see {!Graql_engine.Wal},
          {!Graql_engine.Db_io.recover}, DESIGN.md §9) *)

type phase_times = {
  mutable t_parse : float;
  mutable t_check : float;
  mutable t_encode : float;
  mutable t_decode : float;
  mutable t_execute : float;
}

type t

val create :
  ?pool:Graql_parallel.Domain_pool.t ->
  ?strict:bool ->
  ?faults:Fault.t ->
  ?durability:durability ->
  ?checkpoint_bytes:int ->
  unit ->
  t
(** [strict] (default true) refuses to execute scripts with static
    analysis errors (raising [Graql_error.Error (Analysis _)]). Warnings
    never block. [faults] installs a fault-injection plan on the session
    pool; when absent, {!Fault.of_env} is consulted so CI can inject
    faults into any run via [GRAQL_FAULT_SEED].

    [durability] (default [Off]): with [Wal_dir dir], creation first
    recovers the directory's checkpoint + WAL tail (raising
    [Graql_error.Error (Io _)] on genuine corruption), then logs every
    subsequent mutating statement before applying it. [checkpoint_bytes]
    sets the auto-checkpoint threshold (default: [GRAQL_CHECKPOINT_BYTES]
    or 4 MiB); the log is folded into a fresh snapshot after any script
    that leaves it larger than this. *)

val db : t -> Graql_engine.Db.t

val wal : t -> Graql_engine.Wal.t option
(** The live write-ahead log of a [Wal_dir] session ([None] otherwise
    or after {!close}) — what a replication primary
    ({!Repl.start_primary}) ships from. *)

val durability : t -> durability

val last_recovery : t -> Graql_engine.Db_io.recovery option
(** What [create] recovered, for [Wal_dir] sessions: checkpoint epoch,
    records replayed, torn bytes dropped. [None] for [Off] sessions. *)

val checkpoint : t -> bool
(** Fold the WAL into a fresh checkpoint snapshot now
    ({!Graql_engine.Db_io.checkpoint}). Returns [false] (and does
    nothing) for a session without durability. *)

val maybe_checkpoint : t -> unit
(** Checkpoint iff the WAL has outgrown the session's threshold. Callers
    owning their own concurrency discipline (the serve layer runs this
    under its exclusive write lock, between statements) use this instead
    of {!run_script}'s built-in between-script policy. *)

val close : t -> unit
(** Detach and close the WAL (no-op when [Off]). The directory can then
    be recovered by a new session. *)

val last_diagnostics : t -> Graql_analysis.Diag.t list
val phase_times : t -> phase_times

val ir_bytes_shipped : t -> int
(** Total IR bytes moved front-end → backend so far. *)

val set_faults : t -> Fault.t option -> unit
(** Install or clear the fault plan on the session's pool (no-op for a
    sequential session). *)

val recovered_faults : t -> int
(** Injected faults absorbed by pool-level retry so far — the
    "degraded but correct" signal. *)

val check : t -> string -> Graql_analysis.Diag.t list
(** Static analysis only — catalog metadata, no data access. *)

val run_script :
  ?loader:(string -> string) ->
  ?parallel:bool ->
  ?deadline_ms:int ->
  ?trace:bool ->
  t ->
  string ->
  (Ast.stmt * Graql_engine.Script_exec.outcome) list
(** The full pipeline on GraQL source text. [deadline_ms] bounds backend
    execution: when it expires, in-flight statements stop at the next
    cooperative cancellation point and report
    [O_failed (Timeout _)]; phase timings measured so far are kept.
    [trace:true] arms {!Graql_obs.Trace} for the duration of this run
    (restoring the previous state afterwards). *)

val run_ir :
  ?loader:(string -> string) ->
  ?parallel:bool ->
  ?deadline_ms:int ->
  ?trace:bool ->
  t ->
  bytes ->
  (Ast.stmt * Graql_engine.Script_exec.outcome) list
(** Backend entry point: execute an already-compiled IR blob. Raises
    [Graql_error.Error (Io _)] on a corrupt blob. *)

val stats : t -> Graql_obs.Metrics.snapshot
(** Snapshot of the process-wide metrics registry (counters, gauges,
    histograms) — see {!Graql_obs.Metrics.snapshot}. Refreshes the
    [slo.*] percentile gauges first. *)

val stats_text : t -> string
(** The same registry in Prometheus text exposition format (SLO gauges
    refreshed first). *)

val stats_tables : ?full:bool -> t -> string
(** The registry as human-readable text tables — the payload of the
    repl's [stats;] and the [/stats] endpoint. By default the
    scheduling-variant series ([sched.*], [fault.*], [pool.*] and the
    WAL latency histograms) are hidden; [~full:true] — the repl's
    [stats full;] — shows everything. Ends with the per-class SLO
    percentile table when statement latency data exists. *)

val profile :
  ?loader:(string -> string) ->
  t ->
  string ->
  Graql_engine.Profile_exec.report list
(** EXPLAIN ANALYZE: parse and check [source] like {!run_script}, then
    execute each statement sequentially with profiling armed, returning
    per-statement reports of estimated vs. actual frontier sizes and
    per-operator wall times (render with
    {!Graql_engine.Profile_exec.render}). Side effects happen for
    real. *)

val catalog_rows : t -> string list list
(** Server catalog listing: kind, name, size — what clients can browse. *)

val degree_report : t -> string list list
(** Per edge type: name, out-degree and in-degree distribution summaries —
    the dynamic statistics of Sec. III-B the planner consults. Forces the
    graph views to be built. *)
