module Http = Graql_obs.Http
module Metrics = Graql_obs.Metrics
module Trace = Graql_obs.Trace
module Slow_log = Graql_obs.Slow_log
module Slo = Graql_obs.Slo
module Db_io = Graql_engine.Db_io

type t = {
  http : Http.t;
  ready_flag : bool Atomic.t;
  repl : (unit -> string) option Atomic.t;
  (* Extra /readyz body lines from the replication layer (lagging
     followers). Report-only: a primary's ready *status* never depends
     on its followers. *)
  repl_health : (unit -> string) option Atomic.t;
}

let recovery_summary session =
  match Session.last_recovery session with
  | Some r ->
      Printf.sprintf "recovery: checkpoint=%b epoch=%d replayed=%d truncated=%d\n"
        r.Db_io.rec_checkpoint r.Db_io.rec_epoch r.Db_io.rec_replayed
        r.Db_io.rec_truncated
  | None -> "recovery: none (volatile session)\n"

let get path handle = { Http.rt_meth = "GET"; rt_path = path; rt_handle = handle }

let post path handle =
  { Http.rt_meth = "POST"; rt_path = path; rt_handle = handle }

let metrics_route =
  get "/metrics" (fun ~query:_ ~body:_ ->
      Slo.update_gauges ();
      (* Fold the trace ring's drop count / capacity into the registry
         right before exposition, so the scrape always sees them. *)
      Trace.update_metrics ();
      Http.response
        ~content_type:"text/plain; version=0.0.4; charset=utf-8"
        (Metrics.to_prometheus ()))

let replication_route repl =
  get "/replication" (fun ~query:_ ~body:_ ->
      match Atomic.get repl with
      | Some status ->
          Http.response ~content_type:"application/json" (status ())
      | None -> Http.response ~status:404 "replication not configured\n")

(* The trace surface, shared by every role: a Chrome-trace dump of the
   ring ([?trace_id=] filters to one stitched trace) tagged with this
   process's pid and role for merged Perfetto views, plus arm/disarm. *)
let trace_routes ~role =
  [
    get "/traces" (fun ~query ~body:_ ->
        let trace_id = List.assoc_opt "trace_id" query in
        Http.response ~content_type:"application/json"
          (Trace.to_chrome_json ?trace_id ~role ()));
    post "/traces/start" (fun ~query:_ ~body:_ ->
        Trace.arm ();
        Http.response "tracing armed\n");
    post "/traces/stop" (fun ~query:_ ~body:_ ->
        Trace.disarm ();
        Http.response "tracing disarmed\n");
  ]

let health_summary repl_health =
  match Atomic.get repl_health with
  | Some f -> ( try f () with _ -> "")
  | None -> ""

let routes ~role session ready_flag repl repl_health =
  [
    metrics_route;
    get "/healthz" (fun ~query:_ ~body:_ -> Http.response "ok\n");
    get "/readyz" (fun ~query:_ ~body:_ ->
        if Atomic.get ready_flag then
          Http.response
            ("ready\n" ^ recovery_summary session
           ^ health_summary repl_health)
        else Http.response ~status:503 "starting\n");
    get "/stats" (fun ~query:_ ~body:_ ->
        Http.response (Session.stats_tables ~full:true session));
    get "/slowlog" (fun ~query:_ ~body:_ ->
        Http.response ~content_type:"application/json" (Slow_log.to_json ()));
    replication_route repl;
  ]
  @ trace_routes ~role

let start ?host ?(ready = true) ?(role = "server") ~port session =
  let ready_flag = Atomic.make ready in
  let repl = Atomic.make None in
  let repl_health = Atomic.make None in
  let http =
    Http.start ?host ~port (routes ~role session ready_flag repl repl_health)
  in
  { http; ready_flag; repl; repl_health }

(* A follower process has no Session — its surface is the metrics
   registry plus its replication status and trace ring, and readiness
   is lag-driven. *)
let follower_routes follower repl =
  [
    metrics_route;
    get "/healthz" (fun ~query:_ ~body:_ -> Http.response "ok\n");
    get "/readyz" (fun ~query:_ ~body:_ ->
        if Follower.is_ready follower then
          Http.response
            (Printf.sprintf "ready\nlag: %d record(s), %d byte(s)\n"
               (Follower.lag_records follower)
               (Follower.lag_bytes follower))
        else
          Http.response ~status:503
            (Printf.sprintf "lagging: %d record(s) behind the primary\n"
               (Follower.lag_records follower)));
    replication_route repl;
  ]
  @ trace_routes ~role:"follower"

let start_follower ?host ~port follower =
  let ready_flag = Atomic.make true in
  let repl = Atomic.make (Some (fun () -> Follower.status_json follower)) in
  let http = Http.start ?host ~port (follower_routes follower repl) in
  { http; ready_flag; repl; repl_health = Atomic.make None }

let port t = Http.port t.http
let set_ready t v = Atomic.set t.ready_flag v
let set_replication t status = Atomic.set t.repl status
let set_replication_health t f = Atomic.set t.repl_health f
let ready t = Atomic.get t.ready_flag
let stop t = Http.stop t.http
