module Http = Graql_obs.Http
module Metrics = Graql_obs.Metrics
module Trace = Graql_obs.Trace
module Slow_log = Graql_obs.Slow_log
module Slo = Graql_obs.Slo
module Db_io = Graql_engine.Db_io

type t = {
  http : Http.t;
  ready_flag : bool Atomic.t;
}

let recovery_summary session =
  match Session.last_recovery session with
  | Some r ->
      Printf.sprintf "recovery: checkpoint=%b epoch=%d replayed=%d truncated=%d\n"
        r.Db_io.rec_checkpoint r.Db_io.rec_epoch r.Db_io.rec_replayed
        r.Db_io.rec_truncated
  | None -> "recovery: none (volatile session)\n"

let routes session ready_flag =
  let get path handle = { Http.rt_meth = "GET"; rt_path = path; rt_handle = handle } in
  let post path handle =
    { Http.rt_meth = "POST"; rt_path = path; rt_handle = handle }
  in
  [
    get "/metrics" (fun ~body:_ ->
        Slo.update_gauges ();
        Http.response
          ~content_type:"text/plain; version=0.0.4; charset=utf-8"
          (Metrics.to_prometheus ()));
    get "/healthz" (fun ~body:_ -> Http.response "ok\n");
    get "/readyz" (fun ~body:_ ->
        if Atomic.get ready_flag then
          Http.response ("ready\n" ^ recovery_summary session)
        else Http.response ~status:503 "starting\n");
    get "/stats" (fun ~body:_ ->
        Http.response (Session.stats_tables ~full:true session));
    get "/slowlog" (fun ~body:_ ->
        Http.response ~content_type:"application/json" (Slow_log.to_json ()));
    get "/traces" (fun ~body:_ ->
        Http.response ~content_type:"application/json"
          (Trace.to_chrome_json ()));
    post "/traces/start" (fun ~body:_ ->
        Trace.arm ();
        Http.response "tracing armed\n");
    post "/traces/stop" (fun ~body:_ ->
        Trace.disarm ();
        Http.response "tracing disarmed\n");
  ]

let start ?host ?(ready = true) ~port session =
  let ready_flag = Atomic.make ready in
  let http = Http.start ?host ~port (routes session ready_flag) in
  { http; ready_flag }

let port t = Http.port t.http
let set_ready t v = Atomic.set t.ready_flag v
let ready t = Atomic.get t.ready_flag
let stop t = Http.stop t.http
