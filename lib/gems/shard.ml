module Table = Graql_storage.Table
module Value = Graql_storage.Value
module Row_expr = Graql_relational.Row_expr
module Pool = Graql_parallel.Domain_pool
module Int_vec = Graql_util.Int_vec

type t = { nshards : int; pool : Pool.t }

let create ?shards pool =
  let nshards = match shards with Some n -> max 1 n | None -> Pool.size pool in
  { nshards; pool }

let shards t = t.nshards
let pool t = t.pool

let ranges t table =
  let n = Table.nrows table in
  let per = (n + t.nshards - 1) / t.nshards in
  List.init t.nshards (fun s ->
      let lo = min n (s * per) in
      let hi = min n (lo + per) in
      (lo, hi))

let parallel_scan t table ~init ~row ~merge =
  (* When nrows < nshards the tail ranges are empty: skip them instead of
     spawning no-op tasks and re-running [init] per empty slot. *)
  let rs =
    Array.of_list (List.filter (fun (lo, hi) -> hi > lo) (ranges t table))
  in
  if Array.length rs = 0 then init ()
  else begin
    let results = Array.make (Array.length rs) None in
    let tasks =
      Array.to_list
        (Array.mapi
           (fun i (lo, hi) () ->
             let acc = init () in
             for r = lo to hi - 1 do
               row acc r
             done;
             results.(i) <- Some acc)
           rs)
    in
    Pool.run_tasks t.pool tasks;
    let get i = match results.(i) with Some a -> a | None -> assert false in
    let acc = ref (get 0) in
    for i = 1 to Array.length rs - 1 do
      acc := merge !acc (get i)
    done;
    !acc
  end

let parallel_select t table pred =
  let row_test =
    match Graql_relational.Fast_pred.compile table pred with
    | Some fast -> fast
    | None ->
        fun r ->
          let get c = Table.get table ~row:r ~col:c in
          Row_expr.eval_bool get pred
  in
  let acc =
    parallel_scan t table
      ~init:(fun () -> Int_vec.create ())
      ~row:(fun out r -> if row_test r then Int_vec.push out r)
      ~merge:(fun a b ->
        Int_vec.append a b;
        a)
  in
  Int_vec.to_array acc

let parallel_count t table pred =
  let acc =
    parallel_scan t table
      ~init:(fun () -> ref 0)
      ~row:(fun c r ->
        let get col = Table.get table ~row:r ~col in
        if Row_expr.eval_bool get pred then incr c)
      ~merge:(fun a b ->
        a := !a + !b;
        a)
  in
  !acc
