module Table = Graql_storage.Table
module Value = Graql_storage.Value
module Row_expr = Graql_relational.Row_expr
module Pool = Graql_parallel.Domain_pool
module Int_vec = Graql_util.Int_vec
module Metrics = Graql_obs.Metrics
module Trace = Graql_obs.Trace

(* Fault-recovery counters carry the [fault.] prefix: like [sched.*]
   they depend on scheduling and the injected fault plan, not on query
   semantics. [shard.scan_rows] counts rows actually scanned once per
   successful shard run, so it stays invariant across domain counts. *)
let m_fault_retries = Metrics.counter "fault.retries"
let m_fault_failovers = Metrics.counter "fault.failovers"
let m_attempts = Metrics.counter "sched.shard_attempts"
let m_scan_rows = Metrics.counter "shard.scan_rows"

type t = {
  nshards : int;
  replicas : int;
  pool : Pool.t;
  faults : Fault.t option;
  max_attempts : int;
  backoff_ms : float;
  backoff_cap_ms : float;
  retries : int Atomic.t;
  failovers : int Atomic.t;
}

let create ?shards ?(replicas = 1) ?faults ?(max_attempts = 3)
    ?(backoff_ms = 0.25) ?(backoff_cap_ms = 10.0) pool =
  let nshards = match shards with Some n -> max 1 n | None -> Pool.size pool in
  {
    nshards;
    replicas = max 1 (min replicas nshards);
    pool;
    faults;
    max_attempts = max 1 max_attempts;
    backoff_ms = Float.max 0.0 backoff_ms;
    backoff_cap_ms = Float.max 0.0 backoff_cap_ms;
    retries = Atomic.make 0;
    failovers = Atomic.make 0;
  }

let shards t = t.nshards
let pool t = t.pool
let replicas t = t.replicas
let retries t = Atomic.get t.retries
let failovers t = Atomic.get t.failovers

let ranges t table =
  let n = Table.nrows table in
  let per = (n + t.nshards - 1) / t.nshards in
  List.init t.nshards (fun s ->
      let lo = min n (s * per) in
      let hi = min n (lo + per) in
      (lo, hi))

(* Where each shard (and its replicas) lives: LPT over the shard row
   counts across nshards simulated nodes, primary first. *)
let placement t table =
  let weights =
    Array.of_list (List.map (fun (lo, hi) -> hi - lo) (ranges t table))
  in
  Cluster.replica_placement ~nodes:t.nshards ~replicas:t.replicas weights

(* Run one shard's work with the full recovery protocol: consult the
   fault plan before any work, retry the same node with capped
   exponential backoff, then fail over to the shard's next replica node.
   [body] is re-invoked from scratch on every attempt (it builds a fresh
   accumulator), so recovery is invisible in the result: a recovered run
   is byte-identical to a fault-free one. *)
let run_recovering t ~op ~table_name ~nodes body =
  let label = op ^ ":" ^ table_name in
  let rec on_node node_i attempt =
    let node = nodes.(node_i) in
    Metrics.incr m_attempts;
    let sp =
      Trace.begin_span ~cat:"shard"
        ~args:
          [ ("site", label); ("node", string_of_int node);
            ("attempt", string_of_int attempt) ]
        "shard.attempt"
    in
    match
      (match t.faults with
      | Some plan -> Fault.fire plan ~label ~index:node ~attempt
      | None -> ());
      body ()
    with
    | result ->
        Trace.end_span sp;
        result
    | exception Pool.Transient site ->
        Trace.end_span sp;
        if attempt < t.max_attempts then begin
          Atomic.incr t.retries;
          Metrics.incr m_fault_retries;
          let delay =
            Float.min t.backoff_cap_ms
              (t.backoff_ms *. Float.pow 2.0 (float_of_int (attempt - 1)))
          in
          if delay > 0.0 then Unix.sleepf (delay /. 1000.0);
          on_node node_i (attempt + 1)
        end
        else if node_i + 1 < Array.length nodes then begin
          Atomic.incr t.failovers;
          Metrics.incr m_fault_failovers;
          on_node (node_i + 1) 1
        end
        else raise (Pool.Fault_exhausted { site; attempts = attempt })
  in
  on_node 0 1

let parallel_scan ?(op = "scan") t table ~init ~row ~merge =
  (* When nrows < nshards the tail ranges are empty: skip them instead of
     spawning no-op tasks and re-running [init] per empty slot. *)
  let table_name = Table.name table in
  let placed = placement t table in
  let rs =
    ranges t table
    |> List.mapi (fun s (lo, hi) -> (placed.(s), lo, hi))
    |> List.filter (fun (_, lo, hi) -> hi > lo)
    |> Array.of_list
  in
  if Array.length rs = 0 then init ()
  else begin
    let results = Array.make (Array.length rs) None in
    let tasks =
      Array.to_list
        (Array.mapi
           (fun i (nodes, lo, hi) () ->
             results.(i) <-
               Some
                 (run_recovering t ~op ~table_name ~nodes (fun () ->
                      let acc = init () in
                      for r = lo to hi - 1 do
                        row acc r
                      done;
                      acc));
             Metrics.add m_scan_rows (hi - lo))
           rs)
    in
    Pool.run_tasks t.pool tasks;
    let get i = match results.(i) with Some a -> a | None -> assert false in
    let acc = ref (get 0) in
    for i = 1 to Array.length rs - 1 do
      acc := merge !acc (get i)
    done;
    !acc
  end

let parallel_select t table pred =
  let row_test =
    match Graql_relational.Fast_pred.compile table pred with
    | Some fast -> fast
    | None ->
        fun r ->
          let get c = Table.get table ~row:r ~col:c in
          Row_expr.eval_bool get pred
  in
  let acc =
    parallel_scan ~op:"select" t table
      ~init:(fun () -> Int_vec.create ())
      ~row:(fun out r -> if row_test r then Int_vec.push out r)
      ~merge:(fun a b ->
        Int_vec.append a b;
        a)
  in
  Int_vec.to_array acc

let parallel_count t table pred =
  let acc =
    parallel_scan ~op:"count" t table
      ~init:(fun () -> ref 0)
      ~row:(fun c r ->
        let get col = Table.get table ~row:r ~col in
        if Row_expr.eval_bool get pred then incr c)
      ~merge:(fun a b ->
        a := !a + !b;
        a)
  in
  !acc
