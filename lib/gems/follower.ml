module Db = Graql_engine.Db
module Db_io = Graql_engine.Db_io
module Wal = Graql_engine.Wal
module Graql_error = Graql_engine.Graql_error
module Metrics = Graql_obs.Metrics
module Trace = Graql_obs.Trace

let io_error fmt =
  Printf.ksprintf
    (fun msg -> raise (Graql_error.Error (Graql_error.Io msg)))
    fmt

let g_lag_records =
  Metrics.gauge
    ~help:"Primary log records this follower has not applied yet."
    "repl.lag_records"

let g_lag_bytes =
  Metrics.gauge
    ~help:"Primary log bytes not yet durable on this follower."
    "repl.lag_bytes"

let m_applied =
  Metrics.counter ~help:"Replicated WAL records applied by this follower."
    "repl.applied_records"

let m_reconnects =
  Metrics.counter ~help:"Follower reconnection attempts that succeeded."
    "repl.connects"

let default_max_lag () =
  match
    Option.bind (Sys.getenv_opt "GRAQL_REPL_MAX_LAG") int_of_string_opt
  with
  | Some n when n >= 0 -> n
  | Some _ | None -> 1000

type t = {
  f_dir : string;
  f_host : string;
  f_port : int;
  f_max_lag : int;
  f_pool : Graql_parallel.Domain_pool.t option;
  f_mu : Mutex.t;
  mutable f_db : Db.t;
  mutable f_epoch : int;
  mutable f_offset : int;  (** durable bytes of the current epoch's file *)
  mutable f_records : int;  (** records applied to [f_db] this epoch *)
  mutable f_pending : (Wal.record * string) list;
      (** mirrored but unapplied (paused), with each record's trace-id
          annotation *)
  mutable f_primary_offset : int;  (** primary file size after last chunk *)
  mutable f_primary_records : int;  (** primary record count after last chunk *)
  mutable f_oc : out_channel option;
  mutable f_fd : Unix.file_descr option;
  mutable f_connected : bool;
  mutable f_connects : int;
  mutable f_paused : bool;
  mutable f_stop : bool;
  mutable f_domain : unit Domain.t option;
}

(* ------------------------------------------------------------------ *)
(* Local state helpers (callers hold [f_mu])                           *)

let update_gauges t =
  Metrics.set_gauge g_lag_records
    (float_of_int (max 0 (t.f_primary_records - t.f_records)));
  Metrics.set_gauge g_lag_bytes
    (float_of_int (max 0 (t.f_primary_offset - t.f_offset)))

let fsync_channel oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

let close_oc t =
  (match t.f_oc with Some oc -> close_out_noerr oc | None -> ());
  t.f_oc <- None

let wal_path t = Filename.concat t.f_dir (Wal.file_name ~epoch:t.f_epoch)

let ensure_oc t =
  match t.f_oc with
  | Some oc -> oc
  | None ->
      let oc =
        open_out_gen
          [ Open_wronly; Open_append; Open_binary ]
          0o644 (wal_path t)
      in
      t.f_oc <- Some oc;
      oc

(* Walk a chunk of raw log bytes — whole CRC-framed records by
   construction — and decode each together with its trace-id annotation
   (DESIGN.md §16), so apply spans land in the originating statement's
   trace. Any damage means the stream (not our file) is corrupt: raise
   and let the reconnect handshake resolve it. *)
let records_of_chunk data =
  let size = Bytes.length data in
  let out = ref [] in
  let pos = ref 0 in
  while !pos < size do
    let o = !pos in
    if size - o < 8 then io_error "replication chunk ends mid-frame";
    let len = Int32.to_int (Bytes.get_int32_le data o) land 0xFFFFFFFF in
    if o + 8 + len > size then io_error "replication chunk ends mid-record";
    let payload = Bytes.sub data (o + 8) len in
    if Graql_util.Crc32.bytes payload <> Bytes.get_int32_le data (o + 4) then
      io_error "replication chunk record CRC mismatch";
    (match Wal.decode_record_traced payload with
    | r -> out := r :: !out
    | exception Graql_ir.Wire.Corrupt msg ->
        io_error "replication chunk carries an undecodable record: %s" msg);
    pos := o + 8 + len
  done;
  List.rev !out

let fresh_db t =
  let db = Db.create ?pool:t.f_pool () in
  Graql_engine.Ddl_exec.install db;
  db

(* Scan whatever log file the current epoch has on disk; absent file =
   nothing mirrored yet (offset 0 tells the primary to resync us). *)
let scan_local t =
  let path = wal_path t in
  if Sys.file_exists path then begin
    let scan = Wal.scan_file path in
    (* Drop a torn tail physically, not just logically: the mirror
       appends at end-of-file, which must therefore BE the valid end. *)
    if scan.Wal.s_torn > 0 then Wal.truncate_file path scan.Wal.s_valid_end;
    t.f_offset <- scan.Wal.s_valid_end;
    t.f_records <- List.length scan.Wal.s_records
  end
  else begin
    t.f_offset <- 0;
    t.f_records <- 0
  end

let recover_local t =
  let db = fresh_db t in
  let recovery = Db_io.recover db ~dir:t.f_dir in
  t.f_db <- db;
  t.f_epoch <- recovery.Db_io.rec_epoch;
  t.f_pending <- [];
  scan_local t;
  t.f_primary_offset <- 0;
  t.f_primary_records <- 0

(* ------------------------------------------------------------------ *)
(* Message handlers (called from the replication domain, take [f_mu])  *)

let apply_one t (r, trace) =
  Trace.with_trace trace @@ fun () ->
  Trace.with_span ~cat:"repl" "repl.apply" @@ fun () ->
  Db_io.replay t.f_db r;
  t.f_records <- t.f_records + 1;
  Metrics.incr m_applied

let handle_chunk t ~epoch ~offset ~records data =
  Mutex.lock t.f_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.f_mu)
    (fun () ->
      if epoch <> t.f_epoch || offset <> t.f_offset then
        io_error
          "replication stream out of sync (chunk for epoch %d @%d, local \
           epoch %d @%d)"
          epoch offset t.f_epoch t.f_offset;
      let rs = records_of_chunk data in
      (* Mirror first: the bytes are durable here before we ack, so an
         acked offset survives our own crash. The mirror span is tagged
         with the chunk's (first) trace so a remote statement's
         durability hop shows up in its stitched trace. *)
      if Bytes.length data > 0 then begin
        let chunk_trace =
          match List.find_opt (fun (_, tr) -> tr <> "") rs with
          | Some (_, tr) -> tr
          | None -> ""
        in
        Trace.with_trace chunk_trace @@ fun () ->
        Trace.with_span ~cat:"repl" "repl.mirror" @@ fun () ->
        let oc = ensure_oc t in
        output_bytes oc data;
        fsync_channel oc
      end;
      t.f_offset <- t.f_offset + Bytes.length data;
      t.f_primary_offset <- offset + Bytes.length data;
      t.f_primary_records <- records;
      if t.f_paused then t.f_pending <- t.f_pending @ rs
      else List.iter (apply_one t) rs;
      update_gauges t;
      Repl.Ack { epoch = t.f_epoch; offset = t.f_offset })

let handle_advance t ~epoch =
  Mutex.lock t.f_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.f_mu)
    (fun () ->
      if epoch <> t.f_epoch + 1 then
        io_error
          "replication stream out of sync (advance to epoch %d, local epoch \
           %d)"
          epoch t.f_epoch;
      (* The primary folded everything we were sent; a paused follower
         must drain before mirroring the fold, or its checkpoint would
         miss records. *)
      List.iter (apply_one t) t.f_pending;
      t.f_pending <- [];
      close_oc t;
      (* Same crash-safe order as [Db_io.checkpoint]: complete snapshot
         (MANIFEST last, directory synced), then the new epoch's log,
         then GC of the superseded epoch. *)
      Db_io.export t.f_db
        ~dir:(Filename.concat t.f_dir (Db_io.checkpoint_dir_name ~epoch));
      let path = Filename.concat t.f_dir (Wal.file_name ~epoch) in
      let oc = open_out_bin path in
      output_bytes oc (Wal.header ~epoch);
      fsync_channel oc;
      Wal.fsync_dir t.f_dir;
      Db_io.gc_superseded ~dir:t.f_dir ~epoch;
      t.f_oc <- Some oc;
      t.f_epoch <- epoch;
      t.f_offset <- Wal.header_size;
      t.f_records <- 0;
      t.f_primary_offset <- Wal.header_size;
      t.f_primary_records <- 0;
      update_gauges t;
      Repl.Ack { epoch; offset = t.f_offset })

let rm_rf path =
  let rec go p =
    if Sys.is_directory p then begin
      Array.iter (fun n -> go (Filename.concat p n)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists path then try go path with Sys_error _ -> ()

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end
  in
  go dir

let handle_snapshot t ~epoch files =
  Mutex.lock t.f_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.f_mu)
    (fun () ->
      close_oc t;
      (* Wipe and reinstall. The primary orders each checkpoint's
         MANIFEST after its data files, so a crash mid-install leaves a
         manifest-less (ignored) directory, never a lying one. *)
      Array.iter
        (fun n -> rm_rf (Filename.concat t.f_dir n))
        (if Sys.file_exists t.f_dir then Sys.readdir t.f_dir else [||]);
      mkdir_p t.f_dir;
      List.iter
        (fun (name, contents) ->
          let path = Filename.concat t.f_dir name in
          mkdir_p (Filename.dirname path);
          let oc = open_out_bin path in
          output_string oc contents;
          fsync_channel oc;
          close_out_noerr oc)
        files;
      Wal.fsync_dir t.f_dir;
      recover_local t;
      if t.f_epoch <> epoch then
        io_error "snapshot resync recovered epoch %d, primary sent %d"
          t.f_epoch epoch;
      t.f_primary_offset <- t.f_offset;
      t.f_primary_records <- t.f_records;
      update_gauges t;
      Repl.Ack { epoch = t.f_epoch; offset = t.f_offset })

(* ------------------------------------------------------------------ *)
(* Connection loop                                                     *)

(* The pool's fault-recovery discipline: capped exponential backoff,
   deterministic (no jitter — chaos tests replay byte-for-byte). *)
let backoff_delay n = Float.min 1.0 (0.05 *. (2.0 ** float_of_int (n - 1)))

(* Sleep in short slices so [stop] never waits out a full backoff. *)
let interruptible_sleep t d =
  let slice = 0.05 in
  let rec go left =
    if left > 0.0 && not t.f_stop then begin
      Unix.sleepf (Float.min slice left);
      go (left -. slice)
    end
  in
  go d

let connect t =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd
      (Unix.ADDR_INET (Unix.inet_addr_of_string t.f_host, t.f_port))
  with
  | () -> fd
  | exception e ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      raise e

let session_loop t fd =
  (* Handshake: tell the primary what we already hold. *)
  let hello =
    Mutex.lock t.f_mu;
    let crc =
      if t.f_offset = 0 then 0l
      else begin
        (match t.f_oc with Some oc -> flush oc | None -> ());
        let ic = open_in_bin (wal_path t) in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            Graql_util.Crc32.string (really_input_string ic t.f_offset))
      end
    in
    let m = Repl.Hello { epoch = t.f_epoch; offset = t.f_offset; crc } in
    Mutex.unlock t.f_mu;
    m
  in
  Repl.send_message fd hello;
  Mutex.lock t.f_mu;
  t.f_connected <- true;
  t.f_connects <- t.f_connects + 1;
  Mutex.unlock t.f_mu;
  Metrics.incr m_reconnects;
  let rec loop () =
    match Repl.recv_message fd with
    | None -> ()
    | Some (Repl.Wal_chunk { epoch; offset; records; data }) ->
        Repl.send_message fd (handle_chunk t ~epoch ~offset ~records data);
        loop ()
    | Some (Repl.Advance { epoch }) ->
        Repl.send_message fd (handle_advance t ~epoch);
        loop ()
    | Some (Repl.Snapshot { epoch; files }) ->
        Repl.send_message fd (handle_snapshot t ~epoch files);
        loop ()
    | Some (Repl.Hello _ | Repl.Ack _) ->
        io_error "unexpected message from primary"
  in
  loop ()

let run t =
  let failures = ref 0 in
  while not t.f_stop do
    (match connect t with
    | exception Unix.Unix_error (_, _, _) ->
        incr failures;
        interruptible_sleep t (backoff_delay !failures)
    | fd ->
        Mutex.lock t.f_mu;
        t.f_fd <- Some fd;
        Mutex.unlock t.f_mu;
        (try
           session_loop t fd;
           (* Clean EOF: the primary went away; retry promptly. *)
           failures := 1
         with
        | Graql_error.Error (Graql_error.Io _) | Unix.Unix_error (_, _, _) ->
            incr failures);
        Mutex.lock t.f_mu;
        t.f_fd <- None;
        t.f_connected <- false;
        Mutex.unlock t.f_mu;
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        if not t.f_stop then interruptible_sleep t (backoff_delay !failures))
  done

(* ------------------------------------------------------------------ *)
(* Public surface                                                      *)

let start ?pool ?(host = "127.0.0.1") ?max_lag ~port ~dir () =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let t =
    {
      f_dir = dir;
      f_host = host;
      f_port = port;
      f_max_lag =
        (match max_lag with Some n -> n | None -> default_max_lag ());
      f_pool = pool;
      f_mu = Mutex.create ();
      f_db = Db.create ?pool ();
      f_epoch = 0;
      f_offset = 0;
      f_records = 0;
      f_pending = [];
      f_primary_offset = 0;
      f_primary_records = 0;
      f_oc = None;
      f_fd = None;
      f_connected = false;
      f_connects = 0;
      f_paused = false;
      f_stop = false;
      f_domain = None;
    }
  in
  Mutex.lock t.f_mu;
  recover_local t;
  update_gauges t;
  Mutex.unlock t.f_mu;
  t.f_domain <- Some (Domain.spawn (fun () -> run t));
  t

let locked t f =
  Mutex.lock t.f_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.f_mu) f

let db t = locked t (fun () -> t.f_db)
let epoch t = locked t (fun () -> t.f_epoch)
let offset t = locked t (fun () -> t.f_offset)
let records_applied t = locked t (fun () -> t.f_records)

let lag_records t =
  locked t (fun () -> max 0 (t.f_primary_records - t.f_records))

let lag_bytes t =
  locked t (fun () -> max 0 (t.f_primary_offset - t.f_offset))

let connected t = locked t (fun () -> t.f_connected)
let connects t = locked t (fun () -> t.f_connects)
let is_ready t = lag_records t <= t.f_max_lag

let pause t = locked t (fun () -> t.f_paused <- true)

let resume t =
  locked t (fun () ->
      t.f_paused <- false;
      List.iter (apply_one t) t.f_pending;
      t.f_pending <- [];
      update_gauges t)

let status_json t =
  locked t (fun () ->
      Printf.sprintf
        "{\"role\":\"follower\",\"primary\":%s,\"epoch\":%d,\"offset\":%d,\"records_applied\":%d,\"pending\":%d,\"primary_offset\":%d,\"primary_records\":%d,\"lag_records\":%d,\"lag_bytes\":%d,\"connected\":%b,\"connects\":%d,\"ready\":%b}"
        (Graql_util.Json.quote (Printf.sprintf "%s:%d" t.f_host t.f_port))
        t.f_epoch t.f_offset t.f_records
        (List.length t.f_pending)
        t.f_primary_offset t.f_primary_records
        (max 0 (t.f_primary_records - t.f_records))
        (max 0 (t.f_primary_offset - t.f_offset))
        t.f_connected t.f_connects
        (max 0 (t.f_primary_records - t.f_records) <= t.f_max_lag))

let stop t =
  let was = locked t (fun () ->
      let was = t.f_stop in
      t.f_stop <- true;
      (match t.f_fd with
      | Some fd -> (
          try Unix.shutdown fd Unix.SHUTDOWN_ALL
          with Unix.Unix_error (_, _, _) -> ())
      | None -> ());
      was)
  in
  if not was then begin
    (match t.f_domain with Some d -> Domain.join d | None -> ());
    locked t (fun () -> close_oc t)
  end
