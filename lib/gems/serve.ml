module Ast = Graql_lang.Ast
module Diag = Graql_analysis.Diag
module Typecheck = Graql_analysis.Typecheck
module Db = Graql_engine.Db
module Wal = Graql_engine.Wal
module Script_exec = Graql_engine.Script_exec
module Graql_error = Graql_engine.Graql_error
module Cancel = Graql_parallel.Cancel
module Metrics = Graql_obs.Metrics
module Trace = Graql_obs.Trace
module Query_log = Graql_obs.Query_log
module Table = Graql_storage.Table
module Subgraph = Graql_graph.Subgraph
module Crc32 = Graql_util.Crc32
module Wire = Graql_ir.Wire

let io_error fmt =
  Printf.ksprintf
    (fun msg -> raise (Graql_error.Error (Graql_error.Io msg)))
    fmt

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)

module Proto = struct
  type client_msg =
    | C_hello of { user : string }
    | C_stmt of {
        id : int;
        deadline_ms : int;
        ir : bytes;
        trace : string;
        parent_span : int;
      }
    | C_shutdown

  type outcome_kind = K_table | K_subgraph | K_message | K_failed

  type remote_outcome = {
    ro_kind : outcome_kind;
    ro_code : int;
    ro_text : string;
  }

  type server_msg =
    | S_hello of { role : string }
    | S_result of {
        id : int;
        epoch : int;
        wal_records : int;
        outcomes : remote_outcome list;
      }
    | S_error of { id : int; code : int; msg : string }
    | S_shed of { id : int; reason : string; retry_after_ms : int }
    | S_bye of { msg : string }

  (* Statements are small IR blobs (ingest references server-side files
     rather than inlining data), so the inbound cap can be far below the
     WAL's 256 MiB frame cap. *)
  let max_frame_bytes = 64 * 1024 * 1024

  let tag_hello = 1
  let tag_stmt = 2
  let tag_shutdown = 3
  let tag_s_hello = 10
  let tag_s_result = 11
  let tag_s_error = 12
  let tag_s_shed = 13
  let tag_s_bye = 14

  let kind_int = function
    | K_table -> 0
    | K_subgraph -> 1
    | K_message -> 2
    | K_failed -> 3

  let kind_of_int = function
    | 0 -> K_table
    | 1 -> K_subgraph
    | 2 -> K_message
    | 3 -> K_failed
    | n -> raise (Wire.Corrupt (Printf.sprintf "unknown outcome kind %d" n))

  let encode_client m =
    let w = Wire.writer () in
    (match m with
    | C_hello { user } ->
        Wire.tag w tag_hello;
        Wire.string w user
    | C_stmt { id; deadline_ms; ir; trace; parent_span } ->
        Wire.tag w tag_stmt;
        Wire.varint w id;
        Wire.varint w deadline_ms;
        Wire.string w (Bytes.to_string ir);
        (* Traceparent rides as optional trailing fields: untraced
           statements keep the original frame bytes, and an old server
           decoding a traced frame would reject it loudly rather than
           misparse it. *)
        if trace <> "" || parent_span <> 0 then begin
          Wire.string w trace;
          Wire.varint w parent_span
        end
    | C_shutdown -> Wire.tag w tag_shutdown);
    Wire.contents w

  let encode_server m =
    let w = Wire.writer () in
    (match m with
    | S_hello { role } ->
        Wire.tag w tag_s_hello;
        Wire.string w role
    | S_result { id; epoch; wal_records; outcomes } ->
        Wire.tag w tag_s_result;
        Wire.varint w id;
        Wire.varint w epoch;
        Wire.varint w wal_records;
        Wire.varint w (List.length outcomes);
        List.iter
          (fun o ->
            Wire.varint w (kind_int o.ro_kind);
            Wire.varint w o.ro_code;
            Wire.string w o.ro_text)
          outcomes
    | S_error { id; code; msg } ->
        Wire.tag w tag_s_error;
        Wire.varint w id;
        Wire.varint w code;
        Wire.string w msg
    | S_shed { id; reason; retry_after_ms } ->
        Wire.tag w tag_s_shed;
        Wire.varint w id;
        Wire.string w reason;
        Wire.varint w retry_after_ms
    | S_bye { msg } ->
        Wire.tag w tag_s_bye;
        Wire.string w msg);
    Wire.contents w

  let decoding what payload f =
    match
      let r = Wire.reader payload in
      let m = f r in
      if not (Wire.at_end r) then
        raise (Wire.Corrupt ("trailing bytes inside " ^ what));
      m
    with
    | m -> m
    | exception Wire.Corrupt msg -> io_error "%s: %s" what msg

  let decode_client payload =
    decoding "client message" payload (fun r ->
        match Wire.read_tag r with
        | t when t = tag_hello -> C_hello { user = Wire.read_string r }
        | t when t = tag_stmt ->
            let id = Wire.read_varint r in
            let deadline_ms = Wire.read_varint r in
            let ir = Bytes.of_string (Wire.read_string r) in
            let trace, parent_span =
              if Wire.at_end r then ("", 0)
              else
                let trace = Wire.read_string r in
                (trace, Wire.read_varint r)
            in
            C_stmt { id; deadline_ms; ir; trace; parent_span }
        | t when t = tag_shutdown -> C_shutdown
        | t ->
            raise
              (Wire.Corrupt (Printf.sprintf "unknown client message tag %d" t)))

  let decode_server payload =
    decoding "server message" payload (fun r ->
        match Wire.read_tag r with
        | t when t = tag_s_hello -> S_hello { role = Wire.read_string r }
        | t when t = tag_s_result ->
            let id = Wire.read_varint r in
            let epoch = Wire.read_varint r in
            let wal_records = Wire.read_varint r in
            let n = Wire.read_varint r in
            let outcomes = ref [] in
            for _ = 1 to n do
              let ro_kind = kind_of_int (Wire.read_varint r) in
              let ro_code = Wire.read_varint r in
              let ro_text = Wire.read_string r in
              outcomes := { ro_kind; ro_code; ro_text } :: !outcomes
            done;
            S_result { id; epoch; wal_records; outcomes = List.rev !outcomes }
        | t when t = tag_s_error ->
            let id = Wire.read_varint r in
            let code = Wire.read_varint r in
            let msg = Wire.read_string r in
            S_error { id; code; msg }
        | t when t = tag_s_shed ->
            let id = Wire.read_varint r in
            let reason = Wire.read_string r in
            let retry_after_ms = Wire.read_varint r in
            S_shed { id; reason; retry_after_ms }
        | t when t = tag_s_bye -> S_bye { msg = Wire.read_string r }
        | t ->
            raise
              (Wire.Corrupt (Printf.sprintf "unknown server message tag %d" t)))
end

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let g_connections =
  Metrics.gauge ~help:"Currently connected wire-protocol clients."
    "serve.connections"

let g_inflight =
  Metrics.gauge ~help:"Statements currently executing." "serve.inflight"

let g_queue_depth =
  Metrics.gauge ~help:"Statements waiting for an execution slot."
    "serve.queue_depth"

let m_statements =
  Metrics.counter ~help:"Statements executed by the wire server."
    "serve.statements"

let m_admitted =
  Metrics.counter ~help:"Statements admitted past admission control."
    "serve.admitted"

let m_reaped =
  Metrics.counter
    ~help:"Connections reaped for dribbling a frame past the read deadline."
    "serve.slow_client_reaps"

let m_proto_errors =
  Metrics.counter
    ~help:"Connections dropped for torn, oversized or corrupt frames."
    "serve.protocol_errors"

let m_shed reason =
  Metrics.counter_l
    ~help:"Statements refused by admission control, by reason."
    "serve.shed" [ ("reason", reason) ]

let g_user_admitted user =
  Metrics.gauge_l ~help:"Queued + executing statements per user."
    "serve.user_admitted" [ ("user", user) ]

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

type config = {
  host : string;
  port : int;
  max_inflight : int;
  max_queue : int;
  per_user_admitted : int;
  max_connections : int;
  queue_wait_ms : int;
  read_timeout_s : float;
  idle_timeout_s : float;
  default_deadline_ms : int;
  retry_after_ms : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    max_inflight = 4;
    max_queue = 16;
    per_user_admitted = 8;
    max_connections = 64;
    queue_wait_ms = 1000;
    read_timeout_s = 5.0;
    idle_timeout_s = 60.0;
    default_deadline_ms = 0;
    retry_after_ms = 200;
  }

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)

type conn_slot = { cs_dom : unit Domain.t; cs_done : bool Atomic.t }

type t = {
  sv_server : Server.t;
  sv_session : Session.t;
  sv_db : Db.t;
  sv_cfg : config;
  sv_listen : Unix.file_descr;
  sv_port : int;
  sv_stop_r : Unix.file_descr;
  sv_stop_w : Unix.file_descr;
  sv_mu : Mutex.t;
  sv_cv : Condition.t;
  mutable sv_inflight : int;
  mutable sv_queued : int;
  sv_user_adm : (string, int) Hashtbl.t;
  mutable sv_conns : int;
  mutable sv_slots : conn_slot list;
  mutable sv_accept : unit Domain.t option;
  mutable sv_janitor : unit Domain.t option;
  sv_draining : bool Atomic.t;
  sv_janitor_stop : bool Atomic.t;
  mutable sv_stopped : bool;
}

let draining t = Atomic.get t.sv_draining

(* ------------------------------------------------------------------ *)
(* Bounded socket reads (the Http.read_bounded discipline, adapted to
   frames): while *waiting* for the next statement a connection may be
   silent up to the idle allowance — and must notice draining — but once
   the first byte of a frame arrives, the whole frame must complete
   within the read deadline, so a byte-dribbling client cannot hold a
   connection (or an admission slot) hostage.                          *)

exception Reaped of string
exception Drained

(* Poll granularity: SO_RCVTIMEO wakes blocked reads this often so the
   deadline and the draining flag are both checked promptly. *)
let poll_interval_s = 0.25

let poll_read ~deadline ~abort ~what fd buf off len =
  let rec go () =
    match Unix.read fd buf off len with
    | n -> n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        if abort () then raise Drained;
        if Unix.gettimeofday () > deadline then raise (Reaped what);
        go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0
  in
  go ()

(* [None] on a clean close between frames; [Drained]/[Reaped] while
   waiting; typed Io errors on torn, oversized or corrupt frames. *)
let read_frame_bounded cfg ~abort fd =
  let hdr = Bytes.create 8 in
  let idle_deadline = Unix.gettimeofday () +. cfg.idle_timeout_s in
  let n0 = poll_read ~deadline:idle_deadline ~abort ~what:"frame header" fd hdr 0 8 in
  if n0 = 0 then None
  else begin
    let frame_deadline = Unix.gettimeofday () +. cfg.read_timeout_s in
    let fill ~what buf off0 =
      let rec go off =
        if off < Bytes.length buf then begin
          let n =
            poll_read ~deadline:frame_deadline
              ~abort:(fun () -> false)
              ~what fd buf off
              (Bytes.length buf - off)
          in
          if n = 0 then
            io_error "connection closed mid-%s (%d of %d bytes)" what off
              (Bytes.length buf);
          go (off + n)
        end
      in
      go off0
    in
    fill ~what:"frame header" hdr n0;
    let len = Int32.to_int (Bytes.get_int32_le hdr 0) land 0xFFFFFFFF in
    if len > Proto.max_frame_bytes then
      io_error "frame claims %d bytes (cap %d)" len Proto.max_frame_bytes;
    let crc = Bytes.get_int32_le hdr 4 in
    let payload = Bytes.create len in
    fill ~what:"frame payload" payload 0;
    if Crc32.bytes payload <> crc then io_error "frame CRC mismatch";
    Some payload
  end

(* Best-effort send: a peer that vanished mid-reply has nothing left to
   hear; the WAL, not the socket, is the durability boundary. *)
let send_safe fd msg =
  try Repl.write_frame fd (Proto.encode_server msg)
  with Graql_error.Error (Graql_error.Io _) -> ()

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)

type admission = Admitted | Shed of string

let user_admitted t user =
  Option.value ~default:0 (Hashtbl.find_opt t.sv_user_adm user)

let set_user_admitted t user n =
  if n <= 0 then Hashtbl.remove t.sv_user_adm user
  else Hashtbl.replace t.sv_user_adm user n;
  Metrics.set_gauge (g_user_admitted user) (float_of_int (max 0 n))

let update_gauges_locked t =
  Metrics.set_gauge g_inflight (float_of_int t.sv_inflight);
  Metrics.set_gauge g_queue_depth (float_of_int t.sv_queued)

(* The admission state machine (DESIGN.md §14): quota check → free slot →
   bounded queue with a wait deadline. OCaml's [Condition] has no timed
   wait, so the janitor domain broadcasts [sv_cv] every poll tick and
   waiters re-check their own deadline on wakeup. *)
let admit t ~user =
  if draining t then Shed "draining"
  else begin
    Mutex.lock t.sv_mu;
    let cfg = t.sv_cfg in
    let finish r =
      update_gauges_locked t;
      Mutex.unlock t.sv_mu;
      r
    in
    if user_admitted t user >= cfg.per_user_admitted then
      finish (Shed "user_quota")
    else if t.sv_inflight < cfg.max_inflight then begin
      t.sv_inflight <- t.sv_inflight + 1;
      set_user_admitted t user (user_admitted t user + 1);
      Metrics.incr m_admitted;
      finish Admitted
    end
    else if t.sv_queued >= cfg.max_queue then finish (Shed "queue_full")
    else begin
      t.sv_queued <- t.sv_queued + 1;
      set_user_admitted t user (user_admitted t user + 1);
      update_gauges_locked t;
      let deadline =
        Unix.gettimeofday () +. (float_of_int cfg.queue_wait_ms /. 1000.)
      in
      let rec wait () =
        if draining t then begin
          t.sv_queued <- t.sv_queued - 1;
          set_user_admitted t user (user_admitted t user - 1);
          finish (Shed "draining")
        end
        else if t.sv_inflight < cfg.max_inflight then begin
          t.sv_queued <- t.sv_queued - 1;
          t.sv_inflight <- t.sv_inflight + 1;
          Metrics.incr m_admitted;
          finish Admitted
        end
        else if Unix.gettimeofday () > deadline then begin
          t.sv_queued <- t.sv_queued - 1;
          set_user_admitted t user (user_admitted t user - 1);
          finish (Shed "queue_wait")
        end
        else begin
          Condition.wait t.sv_cv t.sv_mu;
          wait ()
        end
      in
      wait ()
    end
  end

let release t ~user =
  Mutex.lock t.sv_mu;
  t.sv_inflight <- t.sv_inflight - 1;
  set_user_admitted t user (user_admitted t user - 1);
  update_gauges_locked t;
  Condition.broadcast t.sv_cv;
  Mutex.unlock t.sv_mu

(* ------------------------------------------------------------------ *)
(* Statement execution                                                 *)

let render_outcome = function
  | Script_exec.O_table tb ->
      {
        Proto.ro_kind = Proto.K_table;
        ro_code = 0;
        ro_text = Table.to_display_string tb;
      }
  | Script_exec.O_subgraph sg ->
      { Proto.ro_kind = Proto.K_subgraph; ro_code = 0; ro_text = Subgraph.summary sg }
  | Script_exec.O_message m ->
      { Proto.ro_kind = Proto.K_message; ro_code = 0; ro_text = m }
  | Script_exec.O_failed e ->
      {
        Proto.ro_kind = Proto.K_failed;
        ro_code = Graql_error.exit_code e;
        ro_text = Graql_error.to_string e;
      }

(* Concurrent-read safety is stricter than authorization-level
   [Server.writes_data]: [set] and select-[into] don't write *data* but
   do mutate session state (params, result tables, subgraphs), so only
   a bare select may share the database with other readers. *)
let read_only_stmt = function
  | Ast.Select_graph { sg_into = Ast.Into_nothing; _ }
  | Ast.Select_table { st_into = Ast.Into_nothing; _ } ->
      true
  | _ -> false

let wal_records_now session =
  match Session.wal session with Some w -> Wal.records w | None -> 0

let typecheck_strict db ast =
  let diags = Typecheck.check_script ~params:[] (Db.meta db) ast in
  if Diag.has_errors diags then
    Graql_error.raise_error (Graql_error.Analysis diags)

(* Readers never build the lazy graph concurrently: it is rebuilt
   eagerly at start and after every write, under the exclusive lock. *)
let prebuild_graph db = try ignore (Db.graph db) with _ -> ()

let execute t conn ~deadline_ms blob =
  let db = t.sv_db in
  let ast =
    try Graql_ir.Codec.decode_script blob
    with Graql_ir.Wire.Corrupt msg -> io_error "corrupt IR: %s" msg
  in
  (* All-or-nothing authorization before any side effect, as Server.run. *)
  (match Server.role conn with
  | Server.Admin -> ()
  | Server.Analyst ->
      List.iter
        (fun stmt ->
          if Server.writes_data stmt then
            Graql_error.raise_error
              (Graql_error.Denied
                 (Printf.sprintf "user %S (analyst) may not run: %s"
                    (Server.user conn)
                    (Graql_lang.Pretty.stmt_to_string stmt))))
        ast);
  let cancel =
    let ms =
      if deadline_ms > 0 then deadline_ms else t.sv_cfg.default_deadline_ms
    in
    if ms > 0 then Some (Cancel.with_deadline_ms ms) else None
  in
  let exec () =
    typecheck_strict db ast;
    Script_exec.exec_script ~parallel:false ?cancel db ast
  in
  Metrics.incr m_statements;
  if List.for_all read_only_stmt ast then
    let epoch, (results, wr) =
      Db.read_locked db (fun () ->
          let results = exec () in
          (results, wal_records_now t.sv_session))
    in
    (epoch, wr, results)
  else
    Db.write_locked db (fun () ->
        let results = exec () in
        let wr = wal_records_now t.sv_session in
        prebuild_graph db;
        Session.maybe_checkpoint t.sv_session;
        (* The epoch this write creates: [write_locked] bumps on
           release, so the post-write epoch is current + 1. *)
        (Db.epoch db + 1, wr, results))

let handle_stmt t conn fd ~id ~deadline_ms ~trace ~parent blob =
  let user = Server.user conn in
  (* Adopt the client's traceparent for everything this statement does
     on the server side: the admission wait, the executor (whose stmt
     span then inherits the trace id), the WAL append and the record
     annotation replication ships to followers. *)
  Trace.with_context ~trace ~parent @@ fun () ->
  match
    Trace.with_span ~cat:"serve" ~args:[ ("user", user) ] "serve.admit"
      (fun () -> admit t ~user)
  with
  | Shed reason ->
      Metrics.incr (m_shed reason);
      send_safe fd
        (Proto.S_shed { id; reason; retry_after_ms = t.sv_cfg.retry_after_ms })
  | Admitted ->
      Fun.protect
        ~finally:(fun () -> release t ~user)
        (fun () ->
          match
            Trace.with_span ~cat:"serve" "serve.stmt" (fun () ->
                execute t conn ~deadline_ms blob)
          with
          | epoch, wal_records, results ->
              send_safe fd
                (Proto.S_result
                   {
                     id;
                     epoch;
                     wal_records;
                     outcomes = List.map (fun (_, o) -> render_outcome o) results;
                   })
          | exception Graql_error.Error e ->
              send_safe fd
                (Proto.S_error
                   {
                     id;
                     code = Graql_error.exit_code e;
                     msg = Graql_error.to_string e;
                   }))

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)

let code_io = Graql_error.exit_code (Graql_error.Io "")
let code_denied = Graql_error.exit_code (Graql_error.Denied "")

let rec conn_loop t fd =
  let cfg = t.sv_cfg in
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO poll_interval_s
   with Unix.Unix_error (_, _, _) -> ());
  let abort () = draining t in
  (* Handshake: the hello must arrive within the frame read deadline. *)
  let hello_cfg = { cfg with idle_timeout_s = cfg.read_timeout_s } in
  match
    Option.map Proto.decode_client
      (read_frame_bounded hello_cfg ~abort:(fun () -> false) fd)
  with
  | None -> ()
  | Some (Proto.C_stmt _ | Proto.C_shutdown) ->
      Metrics.incr m_proto_errors;
      send_safe fd
        (Proto.S_error
           { id = 0; code = code_io; msg = "expected hello before statements" })
  | exception Reaped _ ->
      Metrics.incr m_reaped;
      send_safe fd
        (Proto.S_error { id = 0; code = code_io; msg = "hello read timed out" })
  | exception Graql_error.Error (Graql_error.Io msg) ->
      Metrics.incr m_proto_errors;
      send_safe fd (Proto.S_error { id = 0; code = code_io; msg })
  | Some (Proto.C_hello { user }) -> (
      match Server.connect t.sv_server ~user with
      | exception Server.Unknown_user u ->
          send_safe fd
            (Proto.S_error
               {
                 id = 0;
                 code = code_denied;
                 msg = Printf.sprintf "unknown user %S" u;
               })
      | conn ->
          send_safe fd
            (Proto.S_hello
               {
                 role =
                   (match Server.role conn with
                   | Server.Admin -> "admin"
                   | Server.Analyst -> "analyst");
               });
          Query_log.set_domain_user (Some (Some user));
          Fun.protect
            ~finally:(fun () -> Query_log.set_domain_user None)
            (fun () ->
              let rec loop () =
                match
                  Option.map Proto.decode_client
                    (read_frame_bounded cfg ~abort fd)
                with
                | None -> ()
                | Some (Proto.C_hello _) ->
                    Metrics.incr m_proto_errors;
                    send_safe fd
                      (Proto.S_error
                         { id = 0; code = code_io; msg = "duplicate hello" })
                | Some (Proto.C_stmt { id; deadline_ms; ir; trace; parent_span })
                  ->
                    handle_stmt t conn fd ~id ~deadline_ms ~trace
                      ~parent:parent_span ir;
                    loop ()
                | Some Proto.C_shutdown ->
                    if Server.role conn = Server.Admin then begin
                      (* Drain first, ack second: once the admin sees
                         the goodbye, no statement admitted after it
                         may slip past the draining gate. *)
                      request_shutdown t;
                      send_safe fd (Proto.S_bye { msg = "draining" })
                    end
                    else begin
                      send_safe fd
                        (Proto.S_error
                           {
                             id = 0;
                             code = code_denied;
                             msg = "shutdown requires an admin account";
                           });
                      loop ()
                    end
                | exception Drained ->
                    send_safe fd (Proto.S_bye { msg = "server draining" })
                | exception Reaped what ->
                    Metrics.incr m_reaped;
                    send_safe fd
                      (Proto.S_error
                         {
                           id = 0;
                           code = code_io;
                           msg = Printf.sprintf "%s read timed out" what;
                         })
                | exception Graql_error.Error (Graql_error.Io msg) ->
                    Metrics.incr m_proto_errors;
                    send_safe fd
                      (Proto.S_error { id = 0; code = code_io; msg })
              in
              loop ()))

and request_shutdown t =
  if not (Atomic.exchange t.sv_draining true) then begin
    (try ignore (Unix.write t.sv_stop_w (Bytes.of_string "x") 0 1)
     with Unix.Unix_error (_, _, _) -> ());
    (* No mutex here: this runs from the CLI's SIGTERM/SIGINT handler,
       which fires at a poll point on whichever domain is running —
       possibly one that already holds [sv_mu] (e.g. domain 0 inside
       [wait]'s [Condition.wait]), where relocking raises and abandons
       the mutex. Broadcasting without the mutex is allowed; a waiter
       that misses this wakeup is caught by the janitor's next
       periodic broadcast. *)
    Condition.broadcast t.sv_cv
  end

(* ------------------------------------------------------------------ *)
(* Accept / janitor / lifecycle                                        *)

let conn_finished t =
  Mutex.lock t.sv_mu;
  t.sv_conns <- t.sv_conns - 1;
  Metrics.set_gauge g_connections (float_of_int t.sv_conns);
  Mutex.unlock t.sv_mu

let spawn_conn t fd =
  let done_flag = Atomic.make false in
  let dom =
    Domain.spawn (fun () ->
        Fun.protect
          ~finally:(fun () ->
            (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
            conn_finished t;
            Atomic.set done_flag true)
          (fun () -> try conn_loop t fd with _ -> ()))
  in
  Mutex.lock t.sv_mu;
  t.sv_slots <- { cs_dom = dom; cs_done = done_flag } :: t.sv_slots;
  Mutex.unlock t.sv_mu

let accept_conn t fd =
  Mutex.lock t.sv_mu;
  let n = t.sv_conns in
  let accepted = n < t.sv_cfg.max_connections in
  if accepted then begin
    t.sv_conns <- n + 1;
    Metrics.set_gauge g_connections (float_of_int t.sv_conns)
  end;
  Mutex.unlock t.sv_mu;
  if not accepted then begin
    (* Typed refusal, not a silent RST: the client sees why. *)
    Metrics.incr (m_shed "connections");
    send_safe fd
      (Proto.S_shed
         {
           id = 0;
           reason = "connections";
           retry_after_ms = t.sv_cfg.retry_after_ms;
         });
    try Unix.close fd with Unix.Unix_error (_, _, _) -> ()
  end
  else spawn_conn t fd

let accept_loop t =
  let rec loop () =
    match Unix.select [ t.sv_listen; t.sv_stop_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | readable, _, _ ->
        if List.mem t.sv_stop_r readable then ()
        else begin
          (match Unix.accept t.sv_listen with
          | exception Unix.Unix_error (_, _, _) -> ()
          | fd, _ -> accept_conn t fd);
          loop ()
        end
  in
  loop ()

(* The janitor backs two things [Condition] alone cannot: queue waiters
   re-check their deadline on its periodic broadcast, and finished
   connection domains are joined promptly so the runtime's domain slots
   are recycled on a long-lived server. *)
let janitor_loop t =
  let rec loop () =
    if Atomic.get t.sv_janitor_stop then ()
    else begin
      Unix.sleepf (poll_interval_s /. 5.);
      Mutex.lock t.sv_mu;
      Condition.broadcast t.sv_cv;
      let finished, live =
        List.partition (fun c -> Atomic.get c.cs_done) t.sv_slots
      in
      t.sv_slots <- live;
      Mutex.unlock t.sv_mu;
      List.iter (fun c -> Domain.join c.cs_dom) finished;
      loop ()
    end
  in
  loop ()

let start ?(config = default_config) server =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let session = Server.session server in
  let db = Session.db session in
  prebuild_graph db;
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error (_, _, _) -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let stop_r, stop_w = Unix.pipe () in
  let t =
    {
      sv_server = server;
      sv_session = session;
      sv_db = db;
      sv_cfg = config;
      sv_listen = listen_fd;
      sv_port = bound_port;
      sv_stop_r = stop_r;
      sv_stop_w = stop_w;
      sv_mu = Mutex.create ();
      sv_cv = Condition.create ();
      sv_inflight = 0;
      sv_queued = 0;
      sv_user_adm = Hashtbl.create 8;
      sv_conns = 0;
      sv_slots = [];
      sv_accept = None;
      sv_janitor = None;
      sv_draining = Atomic.make false;
      sv_janitor_stop = Atomic.make false;
      sv_stopped = false;
    }
  in
  t.sv_accept <- Some (Domain.spawn (fun () -> accept_loop t));
  t.sv_janitor <- Some (Domain.spawn (fun () -> janitor_loop t));
  t

let port t = t.sv_port

let connections t =
  Mutex.lock t.sv_mu;
  let n = t.sv_conns in
  Mutex.unlock t.sv_mu;
  n

let wait t =
  Mutex.lock t.sv_mu;
  while not (draining t) do
    Condition.wait t.sv_cv t.sv_mu
  done;
  Mutex.unlock t.sv_mu

let stop t =
  if not t.sv_stopped then begin
    t.sv_stopped <- true;
    request_shutdown t;
    (match t.sv_accept with Some d -> Domain.join d | None -> ());
    t.sv_accept <- None;
    (try Unix.close t.sv_listen with Unix.Unix_error (_, _, _) -> ());
    (* Connections notice draining within one poll tick, finish any
       in-flight statement, deliver its result, say goodbye and exit. *)
    let rec drain_conns () =
      Mutex.lock t.sv_mu;
      let slots = t.sv_slots in
      t.sv_slots <- [];
      Mutex.unlock t.sv_mu;
      match slots with
      | [] -> ()
      | slots ->
          List.iter (fun c -> Domain.join c.cs_dom) slots;
          drain_conns ()
    in
    drain_conns ();
    Atomic.set t.sv_janitor_stop true;
    (match t.sv_janitor with Some d -> Domain.join d | None -> ());
    t.sv_janitor <- None;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
      [ t.sv_stop_r; t.sv_stop_w ];
    Metrics.set_gauge g_connections 0.0;
    Metrics.set_gauge g_inflight 0.0;
    Metrics.set_gauge g_queue_depth 0.0
  end
