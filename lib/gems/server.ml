module Ast = Graql_lang.Ast
module Graql_error = Graql_engine.Graql_error
module Query_log = Graql_obs.Query_log

type role = Admin | Analyst

type account = {
  acc_role : role;
  mutable acc_executed : int;
  mutable acc_denied : int;
}

type t = {
  session : Session.t;
  users : (string, account) Hashtbl.t;
  mutable audit : (string * string) list; (* reversed *)
  mutable audit_len : int;
}

type connection = { conn_server : t; conn_user : string; conn_account : account }

exception Unknown_user of string

let create ?pool ?durability () =
  {
    session = Session.create ?pool ?durability ();
    users = Hashtbl.create 8;
    audit = [];
    audit_len = 0;
  }

let session t = t.session

let add_user t ~name ~role =
  if Hashtbl.mem t.users name then
    failwith (Printf.sprintf "user %S already exists" name);
  Hashtbl.add t.users name { acc_role = role; acc_executed = 0; acc_denied = 0 }

let connect t ~user =
  match Hashtbl.find_opt t.users user with
  | Some account ->
      { conn_server = t; conn_user = user; conn_account = account }
  | None -> raise (Unknown_user user)

let user c = c.conn_user
let role c = c.conn_account.acc_role

let writes_data = function
  | Ast.Create_table _ | Ast.Create_vertex _ | Ast.Create_edge _
  | Ast.Ingest _ ->
      true
  | Ast.Select_graph _ | Ast.Select_table _ | Ast.Set_param _ -> false

let audit t user stmt =
  t.audit <- (user, Graql_lang.Pretty.stmt_to_string stmt) :: t.audit;
  t.audit_len <- t.audit_len + 1;
  if t.audit_len > 1000 then begin
    t.audit <- List.filteri (fun i _ -> i < 1000) t.audit;
    t.audit_len <- 1000
  end

let stats t = Session.stats t.session

let run ?loader ?deadline_ms ?trace c source =
  let t = c.conn_server in
  let ast =
    try Graql_lang.Parser.parse_script source
    with Graql_lang.Loc.Syntax_error (loc, msg) ->
      Graql_error.raise_error (Graql_error.Parse (loc, msg))
  in
  (* All-or-nothing authorization, before any side effect. *)
  (match c.conn_account.acc_role with
  | Admin -> ()
  | Analyst ->
      List.iter
        (fun stmt ->
          if writes_data stmt then begin
            c.conn_account.acc_denied <- c.conn_account.acc_denied + 1;
            Graql_error.raise_error
              (Graql_error.Denied
                 (Printf.sprintf
                    "user %S (analyst) may not run: %s" c.conn_user
                    (Graql_lang.Pretty.stmt_to_string stmt)))
          end)
        ast);
  (* The query log attributes every statement of this script to the
     submitting account. *)
  Query_log.set_user (Some c.conn_user);
  let results =
    Fun.protect
      ~finally:(fun () -> Query_log.set_user None)
      (fun () ->
        Session.run_script ?loader ?deadline_ms ?trace t.session source)
  in
  List.iter
    (fun (stmt, _) ->
      c.conn_account.acc_executed <- c.conn_account.acc_executed + 1;
      audit t c.conn_user stmt)
    results;
  results

let serve_telemetry ?host ?ready ~port t =
  Telemetry.start ?host ?ready ~port t.session

let audit_log t = List.rev t.audit

let user_stats t =
  List.sort compare
    (Hashtbl.fold
       (fun name acc out -> (name, acc.acc_executed, acc.acc_denied) :: out)
       t.users [])
