(** Physical WAL-shipping replication, primary side (DESIGN.md §13).

    A primary is a durable {!Session} (its {!Graql_engine.Wal}) plus a
    listening socket. Each follower process connects, says which epoch
    and byte offset it has ([Hello]), and from then on receives the
    primary's log as raw file bytes ([Wal_chunk]) in exact append order
    — the follower's [wal-NNNNNN.log] stays byte-identical to the
    primary's. Checkpoints ship as an [Advance] marker (the follower
    folds its own copy); a follower that is too far gone — different
    epoch, or ahead of us after a failover — gets a full [Snapshot]
    resync instead.

    Replication is asynchronous: the primary acknowledges clients after
    its {e own} fsync only, and tracks per-follower acknowledged offsets
    purely for observability ([/replication], lag gauges). A follower
    that stalls long enough to overflow its send queue is disconnected
    and catches up from the file when it reconnects. *)

(** {1 Socket framing}

    Messages travel in the WAL's own record framing
    ([len u32le | crc u32le | payload] — {!Graql_engine.Wal.frame}), so
    a torn or corrupted message is detected exactly like a torn log
    record. *)

val max_frame_bytes : int
(** Refuse frames larger than this (256 MiB) — a corrupt length field
    must not turn into an allocation bomb. *)

val write_frame : Unix.file_descr -> bytes -> unit
(** Frame [payload] and write it whole, retrying partial writes and
    [EINTR]. Raises [Graql_error.Error (Io _)] when the peer is gone
    ([EPIPE], [ECONNRESET], …) — never a bare [Unix_error]. *)

val read_frame : Unix.file_descr -> bytes option
(** Read one complete frame, retrying short reads and [EINTR]. [None]
    on a clean end-of-stream {e between} frames; raises
    [Graql_error.Error (Io _)] on end-of-stream mid-frame, a CRC
    mismatch, an oversized length, or a receive timeout. *)

(** {1 Protocol messages} *)

type message =
  | Hello of { epoch : int; offset : int; crc : int32 }
      (** follower → primary on connect: "my log file for [epoch] is
          [offset] bytes long (records are durable up to there), and
          its bytes checksum to [crc]". [offset = 0] means "I have
          nothing". The CRC lets the primary reject a same-epoch,
          plausible-offset follower whose {e history} diverged (an
          ex-primary rejoining after failover) and snapshot it
          instead. *)
  | Wal_chunk of { epoch : int; offset : int; records : int; data : bytes }
      (** primary → follower: the log file's bytes at [offset] are
          [data] (whole framed records; possibly empty at handshake).
          [records] is the primary's record count for the epoch after
          this chunk — the follower's lag denominator. *)
  | Advance of { epoch : int }
      (** primary → follower: the previous epoch was folded into a
          checkpoint; fold yours likewise and switch to [epoch]. *)
  | Snapshot of { epoch : int; files : (string * string) list }
      (** primary → follower: full resync. [files] are
          directory-relative (checkpoint files first, [MANIFEST] before
          the log file) — wipe your directory, write them, recover. *)
  | Ack of { epoch : int; offset : int }
      (** follower → primary: my file for [epoch] is durable up to
          [offset]. *)

val encode_message : message -> bytes
val decode_message : bytes -> message
(** Raises [Graql_error.Error (Io _)] on a malformed payload. *)

val send_message : Unix.file_descr -> message -> unit
val recv_message : Unix.file_descr -> message option
(** {!write_frame} / {!read_frame} composed with the codec. *)

(** {1 Primary} *)

type primary

val start_primary :
  ?host:string -> port:int -> Graql_engine.Wal.t -> primary
(** Listen on [host] (default 127.0.0.1) and [port] (0 picks an
    ephemeral port), install the WAL observer, and serve followers on a
    dedicated accept domain (plus a sender and a receiver domain per
    connected follower). Raises [Unix.Unix_error] if the bind fails. *)

val primary_port : primary -> int
val follower_count : primary -> int

val min_acked : primary -> (int * int) option
(** [(epoch, offset)] of the least-caught-up connected follower —
    [None] when none are connected. Offsets only compare within the
    primary's current epoch. *)

val status_json : primary -> string
(** The [/replication] payload: role, epoch, log size/records, and one
    entry per connected follower (id, peer address, acked epoch/offset,
    queued bytes). *)

val readyz_health : primary -> string
(** Replication-health lines for the primary's [/readyz] *body*: one
    line per connected follower whose acked position lags beyond
    [GRAQL_REPL_MAX_LAG] records (default 1000; lag estimated from the
    primary's mean WAL record size, since acks carry byte offsets).
    Empty when everything is caught up. The primary's readiness status
    never flips on follower lag — this is report-only. *)

val stop_primary : primary -> unit
(** Remove the WAL observer, disconnect every follower, join all
    domains, close the listener. Idempotent. The session and its WAL
    are untouched. *)
