(** Thin wire-protocol client for {!Serve}: parse and compile GraQL
    locally (the paper's front-end role), ship the IR blob, receive
    rendered results. One request is in flight per connection at a
    time; admission control happens server-side and surfaces as typed
    {!reply} values rather than exceptions, so an overloaded server is
    an expected answer, not a failure. *)

type t

type reply =
  | Ok of {
      epoch : int;  (** database epoch the statement observed *)
      wal_records : int;
      outcomes : Serve.Proto.remote_outcome list;
    }
  | Shed of { reason : string; retry_after_ms : int }
      (** admission control refused the statement; retry later *)
  | Failed of { code : int; msg : string }
      (** typed remote failure; [code] is the
          {!Graql_engine.Graql_error.exit_code} of the class *)
  | Closing of { msg : string }  (** server is draining this connection *)

val connect :
  ?host:string -> ?port:int -> user:string -> unit -> t
(** Dial (default 127.0.0.1:7687), send the hello, await the server's.
    Raises [Graql_error.Error (Denied _)] for an unknown user and
    [Graql_error.Error (Io _)] on connect/protocol failure. *)

val role : t -> string
(** The role the server confirmed at handshake ("admin"/"analyst"). *)

val run_ir : ?deadline_ms:int -> ?trace:string -> t -> bytes -> reply
(** Ship one compiled script blob ({!Graql_ir.Codec.encode_script}).
    With tracing armed the statement becomes a trace root: a fresh (or
    ambient, or [?trace]-supplied) trace id plus a [client.stmt] span
    whose id is sent as the traceparent, so server/WAL/follower spans
    stitch beneath it (DESIGN.md §16). Raises
    [Graql_error.Error (Io _)] if the connection dies. *)

val run : ?deadline_ms:int -> ?trace:string -> t -> string -> reply
(** Parse + compile GraQL source locally, then {!run_ir}. Parse errors
    raise [Graql_error.Error (Parse _)] locally — they never reach the
    server. *)

val shutdown : t -> reply
(** Ask the server to drain and stop (admin only). *)

val close : t -> unit

val reply_exit_code : reply -> int
(** Map a reply onto the CLI's exit-code table: 0 for a fully
    successful result, the failing outcome's code for partial
    failures, the remote code for [Failed], and the Io code for
    [Shed]/[Closing]. *)
