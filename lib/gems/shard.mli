(** Simulated cluster backend: range-partitioned table shards executed by
    domains, with retry and replica failover.

    GEMS holds tables in the aggregated DRAM of cluster nodes and runs
    scans/joins node-parallel. Here, a {!t} assigns each table a list of
    row ranges ("shards"); operations run one task per shard on the domain
    pool and merge per-shard results in shard order, so results are
    deterministic for any shard count.

    Each shard is placed on [replicas] distinct simulated nodes by LPT
    greedy balancing ({!Cluster.replica_placement}). When a {!Fault.t}
    plan makes a node refuse a task, the shard retries that node with
    capped exponential backoff, then fails over to the next replica; only
    when every replica is exhausted does the operation raise
    [Domain_pool.Fault_exhausted]. Recovery re-runs the shard body from a
    fresh accumulator, so a recovered run is byte-identical to a
    fault-free one. *)

module Table = Graql_storage.Table
module Value = Graql_storage.Value

type t

val create :
  ?shards:int ->
  ?replicas:int ->
  ?faults:Fault.t ->
  ?max_attempts:int ->
  ?backoff_ms:float ->
  ?backoff_cap_ms:float ->
  Graql_parallel.Domain_pool.t ->
  t
(** [shards] defaults to the pool size. [replicas] (default 1, clamped to
    [shards]) is the number of distinct nodes holding each shard.
    [max_attempts] (default 3) bounds attempts per node before failing
    over; backoff between same-node attempts doubles from [backoff_ms]
    (default 0.25) up to [backoff_cap_ms] (default 10). *)

val shards : t -> int
val pool : t -> Graql_parallel.Domain_pool.t
val replicas : t -> int

val retries : t -> int
(** Same-node retries performed so far (degraded-but-recovered signal). *)

val failovers : t -> int
(** Replica failovers performed so far. *)

val ranges : t -> Table.t -> (int * int) list
(** The row ranges ([lo, hi)) composing the table, one per shard; empty
    shards included so placement is stable. *)

val placement : t -> Table.t -> int array array
(** Per shard, the nodes holding it (primary first) — the failover walk
    order, from {!Cluster.replica_placement} weighted by shard row
    counts. *)

val parallel_select :
  t -> Table.t -> Graql_relational.Row_expr.t -> int array
(** Shard-parallel filter; row ids in ascending order. *)

val parallel_count :
  t -> Table.t -> Graql_relational.Row_expr.t -> int

val parallel_scan :
  ?op:string ->
  t ->
  Table.t ->
  init:(unit -> 'acc) ->
  row:('acc -> int -> unit) ->
  merge:('acc -> 'acc -> 'acc) ->
  'acc
(** General sharded fold: [row] feeds each row id of a shard into that
    shard's private accumulator; accumulators merge in shard order. [op]
    (default ["scan"]) names the operation in fault-site labels
    (["op:TableName"]). *)
