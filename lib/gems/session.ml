module Ast = Graql_lang.Ast
module Diag = Graql_analysis.Diag
module Db = Graql_engine.Db
module Db_io = Graql_engine.Db_io
module Wal = Graql_engine.Wal
module Script_exec = Graql_engine.Script_exec
module Graql_error = Graql_engine.Graql_error
module Cancel = Graql_parallel.Cancel
module Pool = Graql_parallel.Domain_pool
module Metrics = Graql_obs.Metrics
module Trace = Graql_obs.Trace
module Slow_log = Graql_obs.Slow_log
module Slo = Graql_obs.Slo

type durability = Off | Wal_dir of string

type phase_times = {
  mutable t_parse : float;
  mutable t_check : float;
  mutable t_encode : float;
  mutable t_decode : float;
  mutable t_execute : float;
}

type t = {
  db : Db.t;
  strict : bool;
  durability : durability;
  checkpoint_bytes : int;
  mutable wal : Wal.t option;
  mutable last_recovery : Db_io.recovery option;
  mutable diags : Diag.t list;
  times : phase_times;
  mutable ir_bytes : int;
}

let install_faults t = function
  | None -> ()
  | Some plan -> (
      match Db.pool t.db with
      | Some pool -> Pool.set_fault_hook pool (Some (Fault.hook plan))
      | None -> ())

(* Auto-checkpoint threshold: fold the WAL into a snapshot once it
   outgrows this many bytes (checked between scripts, never mid-script).
   Large enough that short-lived sessions never pay for a checkpoint. *)
let default_checkpoint_bytes () =
  match Option.bind (Sys.getenv_opt "GRAQL_CHECKPOINT_BYTES") int_of_string_opt with
  | Some n when n > 0 -> n
  | Some _ | None -> 4 * 1024 * 1024

let create ?pool ?(strict = true) ?faults ?(durability = Off)
    ?checkpoint_bytes () =
  let db = Db.create ?pool () in
  Graql_engine.Ddl_exec.install db;
  let t =
    {
      db;
      strict;
      durability;
      checkpoint_bytes =
        (match checkpoint_bytes with
        | Some n -> n
        | None -> default_checkpoint_bytes ());
      wal = None;
      last_recovery = None;
      diags = [];
      times =
        { t_parse = 0.0; t_check = 0.0; t_encode = 0.0; t_decode = 0.0; t_execute = 0.0 };
      ir_bytes = 0;
    }
  in
  (match durability with
  | Off -> ()
  | Wal_dir dir ->
      (* Reopen the database: recover whatever the directory holds (an
         empty or absent one recovers to an empty database), then start
         logging. *)
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let recovery = Db_io.recover db ~dir in
      let w = Wal.open_log ~dir ~epoch:recovery.Db_io.rec_epoch in
      Db.set_wal db (Some w);
      t.wal <- Some w;
      t.last_recovery <- Some recovery);
  (* Explicit plan wins; otherwise CI's GRAQL_FAULT_SEED covers every run. *)
  (match faults with
  | Some _ -> install_faults t faults
  | None -> install_faults t (Fault.of_env ()));
  (* Read GRAQL_SLOW_MS once; setting it also arms tracing so slow-log
     entries carry span summaries. *)
  ignore (Slow_log.threshold_ms ());
  t

let db t = t.db
let wal t = t.wal
let durability t = t.durability
let last_recovery t = t.last_recovery

let m_checkpoints = Metrics.counter "wal.checkpoints"
let h_checkpoint_us = Metrics.histogram "wal.checkpoint_us"

let checkpoint t =
  match t.wal with
  | None -> false
  | Some w ->
      Trace.with_span ~cat:"wal" "wal.checkpoint" (fun () ->
          let t0 = Unix.gettimeofday () in
          Db_io.checkpoint t.db w;
          Metrics.observe h_checkpoint_us
            ((Unix.gettimeofday () -. t0) *. 1e6);
          Metrics.incr m_checkpoints);
      true

let maybe_checkpoint t =
  match t.wal with
  | Some w when Wal.size w >= t.checkpoint_bytes -> ignore (checkpoint t)
  | Some _ | None -> ()

let close t =
  (match t.wal with
  | Some w ->
      Wal.close w;
      Db.set_wal t.db None;
      t.wal <- None
  | None -> ())
let last_diagnostics t = t.diags
let phase_times t = t.times
let ir_bytes_shipped t = t.ir_bytes

let set_faults t plan =
  match Db.pool t.db with
  | Some pool -> Pool.set_fault_hook pool (Option.map Fault.hook plan)
  | None -> ()

let recovered_faults t =
  match Db.pool t.db with Some pool -> Pool.fault_retries pool | None -> 0

let timed cell f =
  let t0 = Unix.gettimeofday () in
  match f () with
  | r ->
      cell (Unix.gettimeofday () -. t0);
      r
  | exception e ->
      (* Keep partial phase timings honest even when a phase dies (e.g. a
         deadline fires mid-execute). *)
      cell (Unix.gettimeofday () -. t0);
      raise e

let params_for_check t =
  (* Previously-set session parameters participate in type checking. *)
  let m = Db.meta t.db in
  ignore m;
  []

let parse t source =
  timed (fun d -> t.times.t_parse <- t.times.t_parse +. d) (fun () ->
      try Graql_lang.Parser.parse_script source
      with Graql_lang.Loc.Syntax_error (loc, msg) ->
        Graql_error.raise_error (Graql_error.Parse (loc, msg)))

let check t source =
  let ast = parse t source in
  let meta = Db.meta t.db in
  let diags =
    timed (fun d -> t.times.t_check <- t.times.t_check +. d) (fun () ->
        Graql_analysis.Typecheck.check_script ~params:(params_for_check t) meta
          ast)
  in
  t.diags <- diags;
  diags

let cancel_of_deadline = function
  | None -> None
  | Some ms -> Some (Cancel.with_deadline_ms ms)

(* [?trace:true] arms the span ring for the duration of one run and
   restores the previous armed state afterwards (so it composes with a
   globally armed trace, e.g. --trace-out or GRAQL_SLOW_MS). *)
let with_tracing trace f =
  match trace with
  | Some true ->
      let was = Trace.is_armed () in
      Trace.arm ();
      Fun.protect ~finally:(fun () -> if not was then Trace.disarm ()) f
  | Some false | None -> f ()

let run_ir_untraced ?loader ?parallel ?deadline_ms t blob =
  let ast =
    timed (fun d -> t.times.t_decode <- t.times.t_decode +. d) (fun () ->
        try Graql_ir.Codec.decode_script blob
        with Graql_ir.Wire.Corrupt msg ->
          Graql_error.raise_error (Graql_error.Io ("corrupt IR: " ^ msg)))
  in
  let cancel = cancel_of_deadline deadline_ms in
  let results =
    timed (fun d -> t.times.t_execute <- t.times.t_execute +. d) (fun () ->
        Script_exec.exec_script ?loader ?parallel ?cancel t.db ast)
  in
  (* Checkpoint policy: only between scripts, never mid-statement — the
     WAL is in a clean state here. *)
  maybe_checkpoint t;
  results

let run_ir ?loader ?parallel ?deadline_ms ?trace t blob =
  with_tracing trace (fun () ->
      run_ir_untraced ?loader ?parallel ?deadline_ms t blob)

let checked_ast t source =
  let ast = parse t source in
  let meta = Db.meta t.db in
  let diags =
    timed (fun d -> t.times.t_check <- t.times.t_check +. d) (fun () ->
        Graql_analysis.Typecheck.check_script ~params:(params_for_check t) meta
          ast)
  in
  t.diags <- diags;
  if t.strict && Diag.has_errors diags then
    Graql_error.raise_error (Graql_error.Analysis (Diag.errors diags));
  ast

let run_script ?loader ?parallel ?deadline_ms ?trace t source =
  let ast = checked_ast t source in
  (* Front-end -> backend hop: compile to binary IR and decode it on the
     other side, exactly as the paper's architecture moves queries. *)
  let blob =
    timed (fun d -> t.times.t_encode <- t.times.t_encode +. d) (fun () ->
        Graql_ir.Codec.encode_script ast)
  in
  t.ir_bytes <- t.ir_bytes + Bytes.length blob;
  run_ir ?loader ?parallel ?deadline_ms ?trace t blob

(* ------------------------------------------------------------------ *)
(* Observability surface                                               *)

let stats (_ : t) =
  Slo.update_gauges ();
  Metrics.snapshot ()

let stats_text (_ : t) =
  Slo.update_gauges ();
  Metrics.to_prometheus ()

(* Scheduling-variant series (they legitimately change with the domain
   count) are noise for the everyday [stats;] reader: hidden by default,
   shown by [stats full;] / [?full:true]. *)
let sched_variant name =
  let has_prefix p =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  has_prefix "sched." || has_prefix "fault." || has_prefix "pool."
  || List.mem name [ "wal.append_us"; "wal.fsync_us"; "wal.checkpoint_us" ]

let stats_tables ?(full = false) t =
  let sn = stats t in
  let module T = Graql_util.Text_table in
  let keep name = full || not (sched_variant name) in
  let buf = Buffer.create 1024 in
  let counters = List.filter (fun (n, _) -> keep n) sn.Metrics.sn_counters in
  if counters <> [] then
    Buffer.add_string buf
      (T.render
         ~aligns:[| T.Left; T.Right |]
         ~header:[ "counter"; "value" ]
         (List.map (fun (n, v) -> [ n; string_of_int v ]) counters));
  let gauges = List.filter (fun (n, _) -> keep n) sn.Metrics.sn_gauges in
  if gauges <> [] then begin
    if Buffer.length buf > 0 then Buffer.add_char buf '\n';
    Buffer.add_string buf
      (T.render
         ~aligns:[| T.Left; T.Right |]
         ~header:[ "gauge"; "value" ]
         (List.map (fun (n, v) -> [ n; Printf.sprintf "%g" v ]) gauges))
  end;
  let hists = List.filter (fun (n, _) -> keep n) sn.Metrics.sn_histograms in
  if hists <> [] then begin
    if Buffer.length buf > 0 then Buffer.add_char buf '\n';
    Buffer.add_string buf
      (T.render
         ~aligns:[| T.Left; T.Right; T.Right |]
         ~header:[ "histogram"; "count"; "mean" ]
         (List.map
            (fun (n, h) ->
              [
                n;
                string_of_int h.Metrics.h_count;
                (if h.Metrics.h_count = 0 then "-"
                 else
                   Printf.sprintf "%.1f"
                     (h.Metrics.h_sum /. float_of_int h.Metrics.h_count));
              ])
            hists))
  end;
  let slo = Slo.summary () in
  if slo <> [] then begin
    if Buffer.length buf > 0 then Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "SLO objective: %s\n"
         (match Slo.objective_ms () with
         | Some ms -> Printf.sprintf "%g ms" ms
         | None -> "unset"));
    Buffer.add_string buf
      (T.render
         ~aligns:[| T.Left; T.Right; T.Right; T.Right; T.Right; T.Right |]
         ~header:[ "class"; "count"; "p50(ms)<="; "p95(ms)<="; "p99(ms)<="; "breaches" ]
         (List.map
            (fun s ->
              [
                s.Slo.sc_class;
                string_of_int s.Slo.sc_count;
                Printf.sprintf "%.3f" s.Slo.sc_p50_ms;
                Printf.sprintf "%.3f" s.Slo.sc_p95_ms;
                Printf.sprintf "%.3f" s.Slo.sc_p99_ms;
                string_of_int s.Slo.sc_breaches;
              ])
            slo))
  end;
  Buffer.contents buf

let profile ?loader t source =
  (* EXPLAIN ANALYZE wants span data for the statement it runs. *)
  with_tracing (Some true) (fun () ->
      let ast = checked_ast t source in
      timed (fun d -> t.times.t_execute <- t.times.t_execute +. d) (fun () ->
          Graql_engine.Profile_exec.profile_script ?loader t.db ast))

let catalog_rows t =
  let meta = Db.meta t.db in
  List.map
    (fun name ->
      match Graql_analysis.Meta.find meta name with
      | Some (Graql_analysis.Meta.M_table (_, size)) ->
          [ "table"; name; (match size with Some n -> string_of_int n | None -> "?") ]
      | Some (Graql_analysis.Meta.M_vertex vm) ->
          [
            "vertex";
            name;
            (match vm.Graql_analysis.Meta.vm_size with
            | Some n -> string_of_int n
            | None -> "?");
          ]
      | Some (Graql_analysis.Meta.M_edge em) ->
          [
            "edge";
            name;
            (match em.Graql_analysis.Meta.em_size with
            | Some n -> string_of_int n
            | None -> "?");
          ]
      | Some (Graql_analysis.Meta.M_subgraph _) -> [ "subgraph"; name; "-" ]
      | None -> [ "?"; name; "?" ])
    (Graql_analysis.Meta.names meta)

let degree_report t =
  let g = Db.graph t.db in
  List.map
    (fun name ->
      let e = Graql_graph.Graph_store.find_eset_exn g name in
      [
        name;
        Graql_graph.Degree_stats.to_string
          (Graql_graph.Degree_stats.of_csr (Graql_graph.Eset.forward e));
        Graql_graph.Degree_stats.to_string
          (Graql_graph.Degree_stats.of_csr (Graql_graph.Eset.reverse e));
      ])
    (Graql_graph.Graph_store.eset_names g)
