(** The operational front door (DESIGN.md §11): HTTP endpoints over one
    {!Session}, served by {!Graql_obs.Http} on a dedicated domain.

    Endpoints:
    - [GET /metrics] — Prometheus text exposition (SLO gauges refreshed)
    - [GET /healthz] — liveness: 200 as long as the process serves
    - [GET /readyz] — readiness: 503 until the mounting layer marks the
      session ready (recovery replayed, data ingested), then 200 with a
      recovery summary
    - [GET /stats] — {!Session.stats_tables} (full)
    - [GET /slowlog] — the slow-statement ring as JSON
    - [GET /traces] — Chrome-trace JSON of the span ring, tagged with
      this process's pid and role; [?trace_id=<hex>] filters to one
      stitched trace (DESIGN.md §16)
    - [POST /traces/start], [POST /traces/stop] — arm / disarm tracing
    - [GET /replication] — replication status JSON (404 until
      {!set_replication} installs a provider; always live on a
      {!start_follower} server)

    Unknown paths return 404 and wrong methods 405, exactly as
    {!Graql_obs.Http.start} routes them. *)

type t

val start :
  ?host:string -> ?ready:bool -> ?role:string -> port:int -> Session.t -> t
(** Bind and serve (port 0 picks an ephemeral port — read it back with
    {!port}). [ready] is the initial readiness (default [true]: a
    session whose {!Session.create} returned has already replayed its
    WAL). [role] (default ["server"]) labels this process's lane in
    [/traces] dumps merged across processes. Raises [Unix.Unix_error]
    if the bind fails. *)

val start_follower : ?host:string -> port:int -> Follower.t -> t
(** The follower-process variant: [/metrics], [/healthz], [/readyz],
    [/replication] and the [/traces] surface (role ["follower"]) only —
    there is no session to serve [/stats] from. [/readyz] answers 200
    while
    {!Follower.is_ready} holds — i.e. replication lag is within
    [GRAQL_REPL_MAX_LAG] — and 503 once the follower falls further
    behind, so a load balancer stops routing stale reads to it. *)

val port : t -> int
val set_ready : t -> bool -> unit
val ready : t -> bool

val set_replication : t -> (unit -> string) option -> unit
(** Install (or remove) the [/replication] payload provider — e.g.
    [Some (fun () -> Repl.status_json primary)] once the session starts
    replicating. *)

val set_replication_health : t -> (unit -> string) option -> unit
(** Install (or remove) a provider of extra [/readyz] body lines — e.g.
    [Some (fun () -> Repl.readyz_health primary)], which reports
    followers lagging beyond [GRAQL_REPL_MAX_LAG]. Report-only: the
    readiness *status* never flips on follower lag. *)

val stop : t -> unit
(** Shut the listener down and join its domain. Idempotent. *)
