module Table = Graql_storage.Table
module Table_catalog = Graql_storage.Table_catalog
module Db = Graql_engine.Db
module Graph_store = Graql_graph.Graph_store
module Vset = Graql_graph.Vset
module Eset = Graql_graph.Eset
module Csr = Graql_graph.Csr

type item = { it_name : string; it_shard : int; it_bytes : int }

type plan = {
  pl_nodes : int;
  pl_mem_per_node : int;
  pl_total_bytes : int;
  pl_node_bytes : int array;
  pl_assignments : (item * int) list;
  pl_fits : bool;
  pl_skew : float;
}

let bytes_pretty n =
  let f = float_of_int n in
  if f >= 1e12 then Printf.sprintf "%.2f TB" (f /. 1e12)
  else if f >= 1e9 then Printf.sprintf "%.2f GB" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.2f MB" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.2f kB" (f /. 1e3)
  else Printf.sprintf "%d B" n

(* CSR footprint: offsets (V+1) + neighbor and edge-id arrays (E each),
   8 bytes per entry, both directions accounted by the caller. *)
let csr_bytes csr = 8 * (Csr.nvertices csr + 1 + (2 * Csr.nedges csr))

let database_items ?(shards_per_table = 4) db =
  let tables =
    List.map
      (Table_catalog.find_exn (Db.tables db))
      (Table_catalog.names (Db.tables db))
  in
  let table_items =
    List.concat_map
      (fun t ->
        let total = Table.approx_bytes t in
        let per = total / max 1 shards_per_table in
        List.init shards_per_table (fun i ->
            {
              it_name = "table:" ^ Table.name t;
              it_shard = i;
              it_bytes =
                (if i = shards_per_table - 1 then
                   total - (per * (shards_per_table - 1))
                 else per);
            }))
      tables
  in
  let g = Db.graph db in
  let vertex_items =
    List.map
      (fun name ->
        let v = Graph_store.find_vset_exn g name in
        (* key tuples + hash index entries: ~48 bytes per instance. *)
        { it_name = "vertex:" ^ name; it_shard = 0; it_bytes = 48 * Vset.size v })
      (Graph_store.vset_names g)
  in
  let edge_items =
    List.map
      (fun name ->
        let e = Graph_store.find_eset_exn g name in
        let bytes =
          csr_bytes (Eset.forward e) + csr_bytes (Eset.reverse e)
          + (16 * Eset.size e) (* src/dst endpoint arrays *)
        in
        { it_name = "edges:" ^ name; it_shard = 0; it_bytes = bytes })
      (Graph_store.eset_names g)
  in
  table_items @ vertex_items @ edge_items

(* LPT placement of R copies per item: biggest item first, each copy on
   the least-loaded node not already holding one. Returned in the items'
   original order, primary first — the failover order Shard walks when a
   node stays dead. *)
let replica_placement ~nodes ~replicas weights =
  if nodes <= 0 then invalid_arg "Cluster.replica_placement: nodes";
  let replicas = max 1 (min replicas nodes) in
  let n = Array.length weights in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      match compare weights.(b) weights.(a) with
      | 0 -> compare a b (* stable for equal weights: placement is total *)
      | c -> c)
    order;
  let load = Array.make nodes 0 in
  let out = Array.make n [||] in
  Array.iter
    (fun item ->
      let taken = Array.make nodes false in
      let copies =
        Array.init replicas (fun _ ->
            let best = ref (-1) in
            for nd = 0 to nodes - 1 do
              if
                (not taken.(nd))
                && (!best < 0 || load.(nd) < load.(!best))
              then best := nd
            done;
            taken.(!best) <- true;
            load.(!best) <- load.(!best) + weights.(item);
            !best)
      in
      out.(item) <- copies)
    order;
  out

let plan ?shards_per_table ~nodes ~mem_per_node db =
  if nodes <= 0 then invalid_arg "Cluster.plan: nodes must be positive";
  let items = database_items ?shards_per_table db in
  (* LPT greedy: biggest item first onto the least-loaded node. *)
  let sorted =
    List.sort (fun a b -> compare b.it_bytes a.it_bytes) items
  in
  let load = Array.make nodes 0 in
  let assignments =
    List.map
      (fun item ->
        let best = ref 0 in
        for n = 1 to nodes - 1 do
          if load.(n) < load.(!best) then best := n
        done;
        load.(!best) <- load.(!best) + item.it_bytes;
        (item, !best))
      sorted
  in
  let total = Array.fold_left ( + ) 0 load in
  let max_load = Array.fold_left max 0 load in
  let mean = float_of_int total /. float_of_int nodes in
  {
    pl_nodes = nodes;
    pl_mem_per_node = mem_per_node;
    pl_total_bytes = total;
    pl_node_bytes = load;
    pl_assignments = assignments;
    pl_fits = max_load <= mem_per_node;
    pl_skew = (if total = 0 then 1.0 else float_of_int max_load /. mean);
  }

let report p =
  let header = [ "node"; "resident"; "capacity"; "fill" ] in
  let rows =
    List.init p.pl_nodes (fun n ->
        [
          string_of_int n;
          bytes_pretty p.pl_node_bytes.(n);
          bytes_pretty p.pl_mem_per_node;
          Printf.sprintf "%.1f%%"
            (100.0 *. float_of_int p.pl_node_bytes.(n)
            /. float_of_int (max 1 p.pl_mem_per_node));
        ])
  in
  let summary =
    Printf.sprintf
      "total %s over %d node(s); placement skew %.2f; %s"
      (bytes_pretty p.pl_total_bytes)
      p.pl_nodes p.pl_skew
      (if p.pl_fits then "fits" else "DOES NOT FIT")
  in
  Graql_util.Text_table.render ~header rows ^ "\n" ^ summary
