(** Deterministic, seeded fault plans for the simulated cluster.

    GEMS shards live on cluster nodes that can be slow, lossy, or dead. A
    {!t} decides — as a pure function of (seed, site) — whether a given
    task attempt fails ({!kind.Fail}, raising
    [Domain_pool.Transient]) or runs slow ({!kind.Slow}). Because the
    decision never depends on scheduling order, a faulty run is exactly
    reproducible at any domain or shard count, and the recovery layer can
    be asserted byte-identical against a fault-free run.

    Sites are addressed by the pool's ambient work label plus the task's
    batch index (its simulated shard/node): ["ingest:Offers"/3]. Plans
    plug in at two levels: as a {!Domain_pool} hook ({!hook}) covering
    every parallel chunk the engine schedules, and inside {!Shard}
    operations where the table/operation/node site is explicit. *)

type kind =
  | Fail  (** the node refuses the task (recoverable via retry/failover) *)
  | Slow of int  (** the node stalls for this many ms, then proceeds *)

type rule

type t

val rule :
  ?label:string ->
  ?index:int ->
  ?attempts:int ->
  ?prob:float ->
  kind ->
  rule
(** A rule fires when every given selector matches: [label] is a
    case-insensitive substring of the site's work label, [index] equals
    the shard/node, the attempt number is [<= attempts] (default 1 =
    fail-once-then-recover; [-1] = always, a permanently dead site), and
    the site's seeded coin lands under [prob] (default 1.0 = every
    site). *)

val make : ?seed:int -> rule list -> t
(** First matching rule wins. *)

val fail_once : ?seed:int -> unit -> t
(** Every site fails its first attempt, then recovers — the canonical
    recovery smoke-plan. *)

val dead : ?label:string -> ?index:int -> unit -> t
(** The matching site(s) fail every attempt: retries and failover must
    route around them or report [Exec_fault]. *)

val random : ?seed:int -> ?prob:float -> unit -> t
(** Each site independently fails its first attempt with probability
    [prob] (default 0.25), decided by the seed. *)

val fire : t -> label:string -> index:int -> attempt:int -> unit
(** Consult the plan for one attempt at one site: raises
    [Domain_pool.Transient] for [Fail], sleeps for [Slow], returns
    normally otherwise. *)

val hook : t -> Graql_parallel.Domain_pool.fault_hook
(** The plan as a pool injection hook. *)

val of_env : unit -> t option
(** Build a {!random} plan from [GRAQL_FAULT_SEED] (and optional
    [GRAQL_FAULT_PROB]) — how CI exercises the recovery paths on every
    test run. [None] when the variable is unset or not an integer. *)
