(** Physical WAL-shipping replication, follower side (DESIGN.md §13).

    A follower is a read-only replica in its own process: it recovers
    its local data directory, connects to a {!Repl} primary, and from
    then on mirrors the primary's log {e bytes} into its own
    [wal-NNNNNN.log] (fsync before ack, so an acked byte is durable
    here), applies each record to its in-memory database, folds its own
    checkpoint when the primary's log epoch advances, and accepts a full
    snapshot resync when it is too far gone to catch up from the file.

    Reads against {!db} are snapshot-stale: they see every record the
    follower has {e applied}, which trails the primary by the reported
    lag. Lag has two axes:
    - [lag_records] — records the primary has logged this epoch that
      this follower has not yet applied (its state staleness; drives
      readiness);
    - [lag_bytes] — log bytes not yet durable locally (its durability
      gap; zero whenever the mirror is caught up, even if application
      is {!pause}d).

    The connection loop retries forever with capped exponential backoff
    (the {!Fault} recovery discipline), so a follower started before
    its primary — or surviving a primary crash — converges as soon as
    the primary (re)appears. *)

type t

val start :
  ?pool:Graql_parallel.Domain_pool.t ->
  ?host:string ->
  ?max_lag:int ->
  port:int ->
  dir:string ->
  unit ->
  t
(** Recover [dir] (creating it if missing), then connect to the primary
    at [host] (default 127.0.0.1) : [port] on a dedicated domain and
    replicate forever until {!stop}. [max_lag] bounds {!is_ready}
    (default: [GRAQL_REPL_MAX_LAG], else 1000 records). Raises
    [Graql_error.Error (Io _)] if the local directory is genuinely
    corrupt. *)

val db : t -> Graql_engine.Db.t
(** The replica database — snapshot-stale reads. Replaced wholesale by
    a snapshot resync; re-fetch rather than caching across calls. *)

val epoch : t -> int
val offset : t -> int
(** Durable bytes of the current epoch's local log file. *)

val records_applied : t -> int
(** Records applied to {!db} in the current epoch. *)

val lag_records : t -> int
val lag_bytes : t -> int
(** See the module header for the two axes. Both are 0 until the first
    chunk arrives (a follower that has never connected reports no
    lag — readiness gating starts with the stream). *)

val connected : t -> bool
val connects : t -> int
(** Successful connections so far (≥ 2 means at least one reconnect). *)

val is_ready : t -> bool
(** [lag_records t <= max_lag] — the [/readyz] predicate. *)

val pause : t -> unit
(** Keep mirroring, fsyncing and acking chunks, but stop applying them
    to {!db} (they buffer in order). Lag in records grows; lag in bytes
    stays caught up. Test hook for lag/readiness behaviour. *)

val resume : t -> unit
(** Apply everything buffered by {!pause} and return to normal. *)

val status_json : t -> string
(** The [/replication] payload: role, epoch, offsets, applied/pending
    record counts, lag, connection state. *)

val stop : t -> unit
(** Disconnect, join the replication domain, close the local log file.
    Idempotent. {!db} stays usable, and the data directory is a valid
    recovery source — promote the follower by opening a new durable
    {!Session} (or a primary CLI) on the same directory. *)
