(** Cluster capacity planning.

    The paper sizes GEMS deployments by aggregated DRAM: "for a cluster of
    large enough size or enough memory capacity per node, the overall
    capacity can be in the range of tens of terabytes". This module
    estimates a database's resident footprint (columnar tables, vertex
    views, both CSR edge index directions) and computes a shard placement
    over a homogeneous cluster with LPT (longest-processing-time) greedy
    balancing, reporting whether the database fits and how skewed the
    placement is. *)

type item = {
  it_name : string;  (** "table:Products", "vertex:ProductVtx", "edges:type" *)
  it_shard : int;
  it_bytes : int;
}

type plan = {
  pl_nodes : int;
  pl_mem_per_node : int;
  pl_total_bytes : int;
  pl_node_bytes : int array;  (** load per node after placement *)
  pl_assignments : (item * int) list;  (** item, node — placement order *)
  pl_fits : bool;
  pl_skew : float;  (** max node load / mean node load; 1.0 = perfect *)
}

val database_items :
  ?shards_per_table:int -> Graql_engine.Db.t -> item list
(** Everything resident in memory, split into [shards_per_table] row-range
    shards per table (default 4). Graph views (vertex key indices and both
    CSR directions per edge type) are single items pinned by type, as in
    GEMS where an edge index lives whole on the node owning its partition.
    Forces the graph views to be built. *)

val plan :
  ?shards_per_table:int ->
  nodes:int ->
  mem_per_node:int ->
  Graql_engine.Db.t ->
  plan

val replica_placement :
  nodes:int -> replicas:int -> int array -> int array array
(** [replica_placement ~nodes ~replicas weights] assigns each weighted
    item [replicas] distinct nodes by LPT greedy (biggest item first, each
    copy on the least-loaded node not already holding one). Result is in
    item order; each row lists the item's nodes, primary first — the
    failover order the sharded backend walks when a node stays dead.
    [replicas] is clamped to [nodes]. *)

val report : plan -> string
(** Human-readable placement table plus the fits/skew verdict. *)

val bytes_pretty : int -> string
