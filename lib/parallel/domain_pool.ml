type task = unit -> unit

type t = {
  size : int;
  queue : task Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let worker_loop t () =
  let rec next () =
    Mutex.lock t.mutex;
    let rec wait () =
      if t.stop then begin
        Mutex.unlock t.mutex;
        None
      end
      else if Queue.is_empty t.queue then begin
        Condition.wait t.nonempty t.mutex;
        wait ()
      end
      else begin
        let task = Queue.pop t.queue in
        Mutex.unlock t.mutex;
        Some task
      end
    in
    match wait () with
    | None -> ()
    | Some task ->
        (try task () with _ -> () (* exceptions surfaced via the latch *));
        next ()
  in
  next ()

let create ?domains () =
  let size =
    match domains with
    | Some n -> max 1 n
    | None -> min 8 (Domain.recommended_domain_count ())
  in
  let t =
    {
      size;
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      stop = false;
      workers = [];
    }
  in
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (worker_loop t));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let default_pool = ref None
let default_mutex = Mutex.create ()

let default () =
  Mutex.lock default_mutex;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_mutex;
  p

(* A countdown latch that also captures the first exception raised by any
   task, to be re-raised on the submitting domain. *)
type latch = {
  mutable remaining : int;
  mutable error : exn option;
  lmutex : Mutex.t;
  done_ : Condition.t;
}

let run_tasks t tasks =
  let n = List.length tasks in
  if n = 0 then ()
  else begin
    let latch =
      { remaining = n; error = None; lmutex = Mutex.create (); done_ = Condition.create () }
    in
    let wrap task () =
      (try task ()
       with e ->
         Mutex.lock latch.lmutex;
         if latch.error = None then latch.error <- Some e;
         Mutex.unlock latch.lmutex);
      Mutex.lock latch.lmutex;
      latch.remaining <- latch.remaining - 1;
      if latch.remaining = 0 then Condition.broadcast latch.done_;
      Mutex.unlock latch.lmutex
    in
    let wrapped = List.map wrap tasks in
    (* Keep one task for the calling domain: a single-domain pool still
       makes progress, and the caller is never idle. *)
    (match wrapped with
    | [] -> ()
    | first :: rest ->
        Mutex.lock t.mutex;
        List.iter (fun task -> Queue.push task t.queue) rest;
        Condition.broadcast t.nonempty;
        Mutex.unlock t.mutex;
        first ();
        (* Help drain the queue while waiting. *)
        let rec help () =
          Mutex.lock t.mutex;
          let task = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
          Mutex.unlock t.mutex;
          match task with
          | Some task ->
              task ();
              help ()
          | None -> ()
        in
        help ());
    Mutex.lock latch.lmutex;
    while latch.remaining > 0 do
      Condition.wait latch.done_ latch.lmutex
    done;
    let err = latch.error in
    Mutex.unlock latch.lmutex;
    match err with Some e -> raise e | None -> ()
  end

let chunks ?chunk t ~lo ~hi =
  let n = hi - lo in
  if n <= 0 then []
  else
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (n / (4 * t.size))
    in
    let rec go acc start =
      if start >= hi then List.rev acc
      else
        let stop = min hi (start + chunk) in
        go ((start, stop) :: acc) stop
    in
    go [] lo

let parallel_for_chunks t ?chunk ~lo ~hi f =
  match chunks ?chunk t ~lo ~hi with
  | [] -> ()
  | [ (clo, chi) ] -> f clo chi
  | cs -> run_tasks t (List.map (fun (clo, chi) () -> f clo chi) cs)

let parallel_for t ?chunk ~lo ~hi f =
  parallel_for_chunks t ?chunk ~lo ~hi (fun clo chi ->
      for i = clo to chi - 1 do f i done)

let parallel_map_array t f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f a.(0)) in
    (* Index 0 already computed above to seed the output array. *)
    parallel_for t ~lo:1 ~hi:n (fun i -> out.(i) <- f a.(i));
    out
  end

let chunk_ranges t ?chunk ~lo ~hi () = chunks ?chunk t ~lo ~hi

let parallel_reduce ?chunk t ~init ~body ~merge ~lo ~hi =
  let cs = Array.of_list (chunks ?chunk t ~lo ~hi) in
  let n = Array.length cs in
  if n = 0 then init ()
  else begin
    let results = Array.make n None in
    let tasks =
      Array.to_list
        (Array.mapi
           (fun idx (clo, chi) () ->
             let acc = init () in
             for i = clo to chi - 1 do body acc i done;
             results.(idx) <- Some acc)
           cs)
    in
    run_tasks t tasks;
    let get i = match results.(i) with Some a -> a | None -> assert false in
    let acc = ref (get 0) in
    for i = 1 to n - 1 do acc := merge !acc (get i) done;
    !acc
  end
