type task = unit -> unit

exception Transient of string

exception Fault_exhausted of { site : string; attempts : int }

type fault_hook = label:string -> index:int -> attempt:int -> unit

type t = {
  size : int;
  queue : task Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  (* Fault model: an injection hook consulted before every task attempt,
     and a retry policy for tasks that die with {!Transient}. *)
  mutable fault_hook : fault_hook option;
  mutable max_attempts : int;
  mutable backoff_ms : float;
  mutable backoff_cap_ms : float;
  retries : int Atomic.t;
  (* Ambient cancellation: checked at every task (= chunk) boundary. *)
  mutable cancel : Cancel.t option;
}

let worker_loop t () =
  let rec next () =
    Mutex.lock t.mutex;
    let rec wait () =
      if t.stop then begin
        Mutex.unlock t.mutex;
        None
      end
      else if Queue.is_empty t.queue then begin
        Condition.wait t.nonempty t.mutex;
        wait ()
      end
      else begin
        let task = Queue.pop t.queue in
        Mutex.unlock t.mutex;
        Some task
      end
    in
    match wait () with
    | None -> ()
    | Some task ->
        (try task () with _ -> () (* exceptions surfaced via the latch *));
        next ()
  in
  next ()

let create ?domains () =
  let size =
    match domains with
    | Some n -> max 1 n
    | None -> (
        match
          Option.bind (Sys.getenv_opt "GRAQL_DOMAINS") int_of_string_opt
        with
        | Some n when n >= 1 -> n
        | Some _ | None -> min 8 (Domain.recommended_domain_count ()))
  in
  let t =
    {
      size;
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      stop = false;
      workers = [];
      fault_hook = None;
      max_attempts = 4;
      backoff_ms = 0.25;
      backoff_cap_ms = 20.0;
      retries = Atomic.make 0;
      cancel = None;
    }
  in
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (worker_loop t));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let default_pool = ref None
let default_mutex = Mutex.create ()

let default () =
  Mutex.lock default_mutex;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_mutex;
  p

(* ------------------------------------------------------------------ *)
(* Fault / cancellation configuration                                  *)

let set_fault_hook t h = t.fault_hook <- h

let set_retry ?attempts ?backoff_ms ?backoff_cap_ms t =
  (match attempts with Some a -> t.max_attempts <- max 1 a | None -> ());
  (match backoff_ms with Some b -> t.backoff_ms <- Float.max 0.0 b | None -> ());
  match backoff_cap_ms with
  | Some c -> t.backoff_cap_ms <- Float.max 0.0 c
  | None -> ()

let fault_retries t = Atomic.get t.retries
let set_cancel t c = t.cancel <- c
let cancel_token t = t.cancel

(* Work labels: an ambient, per-domain description of what the submitted
   tasks belong to ("stmt:3", "select:Offers"). Captured at submission
   time, so a worker stealing the task still attributes faults to the
   submitting context. *)
let label_key = Domain.DLS.new_key (fun () -> "")

let current_label () = Domain.DLS.get label_key

let with_label label f =
  let old = Domain.DLS.get label_key in
  Domain.DLS.set label_key label;
  Fun.protect ~finally:(fun () -> Domain.DLS.set label_key old) f

let check_cancel t = match t.cancel with Some c -> Cancel.check c | None -> ()

(* Scheduler metrics. [sched.*] counters depend on how work is chunked
   and scheduled, so they legitimately vary with the domain count. *)
let m_tasks = Graql_obs.Metrics.counter "sched.tasks"
let m_retries = Graql_obs.Metrics.counter "sched.retries"
let m_exhausted = Graql_obs.Metrics.counter "sched.fault_exhausted"
let h_wait_us = Graql_obs.Metrics.histogram "pool.task_wait_us"
let h_run_us = Graql_obs.Metrics.histogram "pool.task_run_us"

let backoff_delay t n =
  Float.min t.backoff_cap_ms (t.backoff_ms *. Float.pow 2.0 (float_of_int (n - 1)))

(* Dispatch retries of the task currently running on this domain: the
   injected fault strikes before the task body, so a body that wants to
   know how degraded its own dispatch was (the query log does) cannot
   see those retries in the [sched.retries] deltas it brackets — it
   reads them here instead. Saved/restored around the body so nested
   inline task execution does not clobber an outer task's count. *)
let task_retries_key = Domain.DLS.new_key (fun () -> ref 0)

let current_task_retries () = !(Domain.DLS.get task_retries_key)

(* One attempt-loop around a task: consult the fault hook, and on
   {!Transient} back off (capped exponential) and retry up to the pool's
   attempt budget. Injected faults strike *before* any task work — the
   simulated node dies on dispatch — so the task body runs exactly once,
   after a hook attempt succeeds. Pool tasks therefore need not be
   idempotent (the join/CSR scatter tasks are not); re-runnable bodies
   with data-dependent failures belong to the site-aware [Shard] layer. *)
let run_with_retries t ~label ~index task =
  let rec attempt n =
    match
      match t.fault_hook with
      | Some hook -> hook ~label ~index ~attempt:n
      | None -> ()
    with
    | () ->
        let r = Domain.DLS.get task_retries_key in
        let saved = !r in
        r := n - 1;
        Fun.protect ~finally:(fun () -> r := saved) task
    | exception Transient site ->
        if n >= t.max_attempts then begin
          Graql_obs.Metrics.incr m_exhausted;
          raise (Fault_exhausted { site; attempts = n })
        end
        else begin
          Atomic.incr t.retries;
          Graql_obs.Metrics.incr m_retries;
          let delay = backoff_delay t n in
          if delay > 0.0 then Unix.sleepf (delay /. 1000.0);
          check_cancel t;
          attempt (n + 1)
        end
  in
  attempt 1

(* A countdown latch that also captures the first exception raised by any
   task — with its backtrace, so the origin of a worker failure survives
   the hop back to the submitting domain. *)
type latch = {
  mutable remaining : int;
  mutable error : (exn * Printexc.raw_backtrace) option;
  lmutex : Mutex.t;
  done_ : Condition.t;
}

let run_tasks t tasks =
  let n = List.length tasks in
  if n = 0 then ()
  else begin
    let latch =
      { remaining = n; error = None; lmutex = Mutex.create (); done_ = Condition.create () }
    in
    let label = current_label () in
    let parent = Graql_obs.Trace.current_parent () in
    (* Trace context crosses the domain hop with the task: worker spans
       stitch into the submitting statement's trace, and the wait/run
       histograms carry its id as an exemplar. *)
    let trace = Graql_obs.Trace.current_trace () in
    let submitted = Unix.gettimeofday () in
    let wrap index task () =
      (try
         check_cancel t;
         let started = Unix.gettimeofday () in
         Graql_obs.Metrics.observe ~exemplar:trace h_wait_us
           ((started -. submitted) *. 1e6);
         Graql_obs.Metrics.incr m_tasks;
         Fun.protect
           ~finally:(fun () ->
             Graql_obs.Metrics.observe ~exemplar:trace h_run_us
               ((Unix.gettimeofday () -. started) *. 1e6))
           (fun () ->
             Graql_obs.Trace.with_context ~trace ~parent (fun () ->
                 Graql_obs.Trace.with_span ~cat:"pool"
                   ~args:[ ("label", label) ]
                   "pool.task"
                   (fun () -> run_with_retries t ~label ~index task)))
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock latch.lmutex;
         if latch.error = None then latch.error <- Some (e, bt);
         Mutex.unlock latch.lmutex);
      Mutex.lock latch.lmutex;
      latch.remaining <- latch.remaining - 1;
      if latch.remaining = 0 then Condition.broadcast latch.done_;
      Mutex.unlock latch.lmutex
    in
    let wrapped = List.mapi wrap tasks in
    (* Keep one task for the calling domain: a single-domain pool still
       makes progress, and the caller is never idle. *)
    (match wrapped with
    | [] -> ()
    | first :: rest ->
        Mutex.lock t.mutex;
        List.iter (fun task -> Queue.push task t.queue) rest;
        Condition.broadcast t.nonempty;
        Mutex.unlock t.mutex;
        first ();
        (* Help drain the queue while waiting. *)
        let rec help () =
          Mutex.lock t.mutex;
          let task = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
          Mutex.unlock t.mutex;
          match task with
          | Some task ->
              task ();
              help ()
          | None -> ()
        in
        help ());
    Mutex.lock latch.lmutex;
    while latch.remaining > 0 do
      Condition.wait latch.done_ latch.lmutex
    done;
    let err = latch.error in
    Mutex.unlock latch.lmutex;
    match err with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let chunks ?chunk t ~lo ~hi =
  let n = hi - lo in
  if n <= 0 then []
  else
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (n / (4 * t.size))
    in
    let rec go acc start =
      if start >= hi then List.rev acc
      else
        let stop = min hi (start + chunk) in
        go ((start, stop) :: acc) stop
    in
    go [] lo

let parallel_for_chunks t ?chunk ~lo ~hi f =
  match chunks ?chunk t ~lo ~hi with
  | [] -> ()
  | [ (clo, chi) ] ->
      check_cancel t;
      f clo chi
  | cs -> run_tasks t (List.map (fun (clo, chi) () -> f clo chi) cs)

let parallel_for t ?chunk ~lo ~hi f =
  parallel_for_chunks t ?chunk ~lo ~hi (fun clo chi ->
      for i = clo to chi - 1 do f i done)

let parallel_map_array t f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f a.(0)) in
    (* Index 0 already computed above to seed the output array. *)
    parallel_for t ~lo:1 ~hi:n (fun i -> out.(i) <- f a.(i));
    out
  end

let chunk_ranges t ?chunk ~lo ~hi () = chunks ?chunk t ~lo ~hi

let parallel_reduce ?chunk t ~init ~body ~merge ~lo ~hi =
  let cs = Array.of_list (chunks ?chunk t ~lo ~hi) in
  let n = Array.length cs in
  if n = 0 then init ()
  else begin
    let results = Array.make n None in
    let tasks =
      Array.to_list
        (Array.mapi
           (fun idx (clo, chi) () ->
             let acc = init () in
             for i = clo to chi - 1 do body acc i done;
             results.(idx) <- Some acc)
           cs)
    in
    run_tasks t tasks;
    let get i = match results.(i) with Some a -> a | None -> assert false in
    let acc = ref (get 0) in
    for i = 1 to n - 1 do acc := merge !acc (get i) done;
    !acc
  end
