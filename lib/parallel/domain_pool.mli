(** Persistent fork-join pool over OCaml 5 domains.

    This is the "backend cluster" substrate: GEMS executes scans, joins and
    traversals shard-parallel across compute nodes; here the same roles are
    played by domains in one address space. The pool is created once and
    reused — spawning domains per operation would dominate query times. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] starts [domains - 1] worker domains (the caller
    counts as one). Defaults to [Domain.recommended_domain_count ()],
    capped at 8. *)

val size : t -> int
(** Total parallelism including the calling domain. *)

val shutdown : t -> unit
(** Join all workers. The pool must not be used afterwards. *)

val default : unit -> t
(** Lazily-created process-wide pool. *)

val run_tasks : t -> (unit -> unit) list -> unit
(** Run the tasks to completion, in parallel; re-raises the first exception
    observed (after all tasks finish). *)

val parallel_for : t -> ?chunk:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for pool ~lo ~hi f] applies [f] to every index in [lo, hi).
    [chunk] bounds scheduling overhead; default splits into ~4 chunks per
    worker. *)

val parallel_for_chunks :
  t -> ?chunk:int -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [parallel_for_chunks pool ~lo ~hi f] invokes [f clo chi] on disjoint
    subranges covering [lo, hi); each call runs on one worker, letting the
    caller keep per-chunk accumulators. *)

val parallel_map_array : t -> ('a -> 'b) -> 'a array -> 'b array

val chunk_ranges :
  t -> ?chunk:int -> lo:int -> hi:int -> unit -> (int * int) list
(** The disjoint [(lo, hi)] subranges a parallel loop over the range would
    use. Exposed so operators that keep per-chunk accumulators (the
    partitioned join, CSR construction) can size them up front. *)

val parallel_reduce :
  ?chunk:int -> t -> init:(unit -> 'acc) -> body:('acc -> int -> unit) ->
  merge:('acc -> 'acc -> 'acc) -> lo:int -> hi:int -> 'acc
(** Chunked reduction: each chunk folds into a private accumulator created
    by [init]; accumulators are merged in chunk order, so the result is
    deterministic whenever [merge] is associative. Passing an explicit
    [chunk] makes the decomposition (and therefore the merge tree of any
    non-associative float accumulation) independent of the pool size. *)
