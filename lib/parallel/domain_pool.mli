(** Persistent fork-join pool over OCaml 5 domains.

    This is the "backend cluster" substrate: GEMS executes scans, joins and
    traversals shard-parallel across compute nodes; here the same roles are
    played by domains in one address space. The pool is created once and
    reused — spawning domains per operation would dominate query times.

    Cluster nodes can be slow, lossy, or dead, so the pool also carries the
    fault model: an injection hook fires before every scheduled task, tasks
    that die with {!Transient} are retried with capped exponential backoff,
    and an ambient {!Cancel} token is polled at every task boundary so
    deadlines cut running queries short. *)

type t

exception Transient of string
(** A recoverable simulated fault; the payload names the site
    ("scan:Offers/node3"). Raised by injection hooks — see
    {!Graql_gems.Fault} — and retried by the pool up to its attempt
    budget. *)

exception Fault_exhausted of { site : string; attempts : int }
(** A task's retry budget ran out (or its last replica died): the shard is
    effectively dead. Maps to [Graql_error.Exec_fault] upstream. *)

type fault_hook = label:string -> index:int -> attempt:int -> unit
(** Called before every attempt of every scheduled task: [label] is the
    ambient work label (see {!with_label}), [index] the task's position in
    its batch (its simulated shard), [attempt] counts from 1. The hook
    simulates failures by raising {!Transient} and slow nodes by
    sleeping. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] starts [domains - 1] worker domains (the caller
    counts as one). When [?domains] is omitted the [GRAQL_DOMAINS]
    environment variable (a positive integer) decides, falling back to
    [Domain.recommended_domain_count ()] capped at 8. *)

val size : t -> int
(** Total parallelism including the calling domain. *)

val shutdown : t -> unit
(** Join all workers. The pool must not be used afterwards. *)

val default : unit -> t
(** Lazily-created process-wide pool. *)

val set_fault_hook : t -> fault_hook option -> unit
(** Install (or clear) the fault-injection hook. *)

val set_retry :
  ?attempts:int -> ?backoff_ms:float -> ?backoff_cap_ms:float -> t -> unit
(** Retry policy for {!Transient} failures: total attempts per task
    (default 4), initial backoff and backoff cap in milliseconds (defaults
    0.25 / 20). Backoff doubles per retry. *)

val fault_retries : t -> int
(** Cumulative count of transparently recovered task attempts — the
    "degraded but correct" signal surfaced per run by [Session]. *)

val set_cancel : t -> Cancel.t option -> unit
(** Install (or clear) the ambient cancellation token. Every subsequently
    scheduled task checks it before running (and between retry attempts),
    so in-flight parallel loops stop at the next chunk boundary. *)

val cancel_token : t -> Cancel.t option

val with_label : string -> (unit -> 'a) -> 'a
(** [with_label l f] runs [f] with ambient work label [l] on the calling
    domain. Labels are captured when tasks are submitted and passed to the
    fault hook, letting fault plans target work by statement or operator
    regardless of which worker executes it. *)

val current_label : unit -> string

val current_task_retries : unit -> int
(** Dispatch retries absorbed before the currently running pool task's
    body started (0 outside a pool task, or when dispatch succeeded
    first try). The query log reads this to classify a statement that
    only ran because its dispatch was retried as "degraded". *)

val run_tasks : t -> (unit -> unit) list -> unit
(** Run the tasks to completion, in parallel; re-raises the first exception
    observed (after all tasks finish) with its original backtrace, so a
    worker failure's origin survives the hop to the submitting domain. *)

val parallel_for : t -> ?chunk:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for pool ~lo ~hi f] applies [f] to every index in [lo, hi).
    [chunk] bounds scheduling overhead; default splits into ~4 chunks per
    worker. *)

val parallel_for_chunks :
  t -> ?chunk:int -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [parallel_for_chunks pool ~lo ~hi f] invokes [f clo chi] on disjoint
    subranges covering [lo, hi); each call runs on one worker, letting the
    caller keep per-chunk accumulators. *)

val parallel_map_array : t -> ('a -> 'b) -> 'a array -> 'b array

val chunk_ranges :
  t -> ?chunk:int -> lo:int -> hi:int -> unit -> (int * int) list
(** The disjoint [(lo, hi)] subranges a parallel loop over the range would
    use. Exposed so operators that keep per-chunk accumulators (the
    partitioned join, CSR construction) can size them up front. *)

val parallel_reduce :
  ?chunk:int -> t -> init:(unit -> 'acc) -> body:('acc -> int -> unit) ->
  merge:('acc -> 'acc -> 'acc) -> lo:int -> hi:int -> 'acc
(** Chunked reduction: each chunk folds into a private accumulator created
    by [init]; accumulators are merged in chunk order, so the result is
    deterministic whenever [merge] is associative. Passing an explicit
    [chunk] makes the decomposition (and therefore the merge tree of any
    non-associative float accumulation) independent of the pool size. *)
