(** Cooperative cancellation tokens.

    A token is either cancelled explicitly ({!cancel}) or implicitly by an
    absolute deadline. Long-running parallel work polls {!check} at chunk
    boundaries ({!Domain_pool} does this for every task it schedules), so
    an in-flight scan or join stops within one chunk of the deadline rather
    than running to completion. *)

type t

exception Cancelled of int
(** Raised by {!check}. The payload is the token's millisecond budget
    (0 for tokens cancelled explicitly rather than by deadline). *)

val create : unit -> t
(** A token with no deadline; fires only via {!cancel}. *)

val with_deadline_ms : int -> t
(** A token that cancels itself [ms] milliseconds from now. *)

val cancel : t -> unit
(** Trip the token. Idempotent; visible to all domains. *)

val is_cancelled : t -> bool
(** True once tripped or past the deadline. *)

val check : t -> unit
(** Raise {!Cancelled} if {!is_cancelled}. *)

val budget_ms : t -> int
(** The deadline budget the token was created with (0 if none). *)
