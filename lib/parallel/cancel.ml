type t = {
  cancelled : bool Atomic.t;
  deadline : float option; (* absolute, Unix.gettimeofday clock *)
  budget_ms : int;
}

exception Cancelled of int

let create () = { cancelled = Atomic.make false; deadline = None; budget_ms = 0 }

let with_deadline_ms ms =
  if ms <= 0 then invalid_arg "Cancel.with_deadline_ms";
  {
    cancelled = Atomic.make false;
    deadline = Some (Unix.gettimeofday () +. (float_of_int ms /. 1000.0));
    budget_ms = ms;
  }

let budget_ms t = t.budget_ms
let cancel t = Atomic.set t.cancelled true

let is_cancelled t =
  Atomic.get t.cancelled
  ||
  match t.deadline with
  | Some d when Unix.gettimeofday () > d ->
      Atomic.set t.cancelled true;
      true
  | _ -> false

let check t = if is_cancelled t then raise (Cancelled t.budget_ms)
