(** Lightweight tracing spans (DESIGN.md §10).

    Spans are begin/end pairs with parent linkage and wall-clock
    timestamps, recorded into a fixed-size in-memory ring buffer when
    tracing is {!arm}ed — and costing a single atomic read when it is
    not. Completed spans can be dumped in Chrome-trace JSON ("complete
    event" form), loadable in about:tracing or Perfetto.

    Parent linkage is ambient: {!with_span} makes its span the parent of
    any span begun inside the callback on the same domain, and
    {!with_parent} carries a span id across a domain hop (the pool task
    closure runs it on whichever worker picks the task up). *)

val arm : unit -> unit
(** Start recording. Idempotent; does not clear previously recorded
    events. *)

val disarm : unit -> unit
(** Stop recording. Recorded events remain readable. *)

val is_armed : unit -> bool

val clear : unit -> unit
(** Drop all recorded events. *)

val set_capacity : int -> unit
(** Resize the ring buffer (default 65536 events); clears it. Oldest
    events are overwritten once the ring wraps. *)

type span

val null_span : span
(** The span handle returned while disarmed; {!end_span} on it is a
    no-op and its {!span_id} is 0. *)

val begin_span :
  ?cat:string -> ?args:(string * string) list -> string -> span

val end_span : span -> unit
(** Record the completed span. Must be called on the domain that began
    it (the event is stamped with the ending domain's id). *)

val span_id : span -> int

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the callback under a span that is also made the current parent
    for the duration. The span is recorded even if the callback raises. *)

val with_parent : int -> (unit -> 'a) -> 'a
(** Make an explicit span id the current parent for the callback —
    the cross-domain half of parent linkage. *)

val current_parent : unit -> int
(** The ambient parent span id on this domain (0 = none). Capture it at
    task-submission time to hand to {!with_parent} on a worker. *)

type event = {
  ev_id : int;
  ev_parent : int;  (** 0 = no parent *)
  ev_name : string;
  ev_cat : string;
  ev_ts_us : float;  (** start, microseconds since process start *)
  ev_dur_us : float;
  ev_dom : int;  (** domain that completed the span *)
  ev_args : (string * string) list;
}

val events : unit -> event list
(** Recorded events in start-timestamp order. *)

val children : int -> event list
(** Recorded events whose parent is the given span id. *)

val dropped : unit -> int
(** Events overwritten by ring wrap-around since the last {!clear}. *)

val to_chrome_json : unit -> string
(** A JSON array of Chrome-trace complete events ([ph:"X"]); [tid] is
    the recording domain's id, span id and parent are carried in
    [args]. *)

val write_chrome_json : string -> unit
(** Write {!to_chrome_json} to a file. *)
