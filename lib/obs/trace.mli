(** Lightweight tracing spans with distributed trace ids (DESIGN.md
    §10, §16).

    Spans are begin/end pairs with parent linkage and wall-clock
    timestamps, recorded into a fixed-size in-memory ring buffer when
    tracing is {!arm}ed — and costing a single atomic read when it is
    not. Completed spans can be dumped in Chrome-trace JSON ("complete
    event" form), loadable in about:tracing or Perfetto.

    Parent linkage is ambient: {!with_span} makes its span the parent of
    any span begun inside the callback on the same domain, and
    {!with_parent} carries a span id across a domain hop (the pool task
    closure runs it on whichever worker picks the task up).

    Trace ids are the cross-process half: 128-bit ids rendered as 32
    lowercase hex characters ("" = untraced). {!with_trace} makes an id
    ambient on a domain; every span begun while it is set is stamped
    with it, and {!with_context} adopts both a remote trace id and a
    remote parent span id — the receiving side of a traceparent carried
    over a wire protocol. Setting [GRAQL_TRACE=1] arms tracing at
    module load (the knob for spawned server/follower processes). *)

val arm : unit -> unit
(** Start recording. Idempotent; does not clear previously recorded
    events. *)

val disarm : unit -> unit
(** Stop recording. Recorded events remain readable. *)

val is_armed : unit -> bool

val clear : unit -> unit
(** Drop all recorded events. *)

val set_capacity : int -> unit
(** Resize the ring buffer (default 65536 events); clears it. Oldest
    events are overwritten once the ring wraps. *)

type span

val null_span : span
(** The span handle returned while disarmed; {!end_span} on it is a
    no-op and its {!span_id} is 0. *)

val begin_span :
  ?cat:string -> ?args:(string * string) list -> string -> span
(** Open a span. The ambient parent span id and trace id of the calling
    domain are captured at this point. *)

val end_span : span -> unit
(** Record the completed span. Must be called on the domain that began
    it (the event is stamped with the ending domain's id). *)

val span_id : span -> int

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the callback under a span that is also made the current parent
    for the duration. The span is recorded even if the callback raises. *)

val with_parent : int -> (unit -> 'a) -> 'a
(** Make an explicit span id the current parent for the callback —
    the cross-domain half of parent linkage. *)

val current_parent : unit -> int
(** The ambient parent span id on this domain (0 = none). Capture it at
    task-submission time to hand to {!with_parent} on a worker. *)

(** {2 Trace ids} *)

val new_trace_id : unit -> string
(** A fresh 128-bit trace id: 32 lowercase hex characters, unique
    across domains and (with overwhelming probability) across
    processes. *)

val current_trace : unit -> string
(** The ambient trace id on this domain ("" = none). *)

val with_trace : string -> (unit -> 'a) -> 'a
(** Make a trace id ambient for the callback: spans begun inside are
    stamped with it. *)

val with_context : trace:string -> parent:int -> (unit -> 'a) -> 'a
(** Adopt a remote statement's traceparent — trace id and parent span
    id — as this domain's ambient context for the callback. *)

type event = {
  ev_id : int;
  ev_parent : int;  (** 0 = no parent *)
  ev_name : string;
  ev_cat : string;
  ev_trace : string;  (** trace id, "" = untraced *)
  ev_ts_us : float;  (** start, microseconds since process start *)
  ev_dur_us : float;
  ev_dom : int;  (** domain that completed the span *)
  ev_args : (string * string) list;
}

val events : unit -> event list
(** Recorded events in start-timestamp order. *)

val children : int -> event list
(** Recorded events whose parent is the given span id. *)

val events_of_trace : string -> event list
(** Recorded events stamped with the given trace id, in
    start-timestamp order. *)

val dropped : unit -> int
(** Events overwritten by ring wrap-around since the last {!clear}. *)

val capacity : unit -> int
(** The ring's slot count (the default even before first use). *)

val update_metrics : unit -> unit
(** Refresh [trace.ring_capacity] (gauge) and [trace.dropped] (counter)
    in the metrics registry from the ring's current state — call before
    an exposition so silent trace loss is visible on /metrics. *)

val to_chrome_json : ?trace_id:string -> ?role:string -> unit -> string
(** A JSON array of Chrome-trace complete events ([ph:"X"]); [pid] is
    the real process id, [tid] the recording domain's id; span id,
    parent and trace id are carried in [args]. [trace_id] restricts the
    dump to one trace; [role] prepends a [process_name] metadata event
    labeling this process's lane in a merged Perfetto view. *)

val merge_dumps : string list -> string
(** Splice several Chrome-trace dumps (one per process, each exported
    with a distinct [role]) into one loadable JSON array. *)

val write_chrome_json : ?trace_id:string -> ?role:string -> string -> unit
(** Write {!to_chrome_json} to a file. *)
