(** A minimal HTTP/1.1 server for the operational endpoints (DESIGN.md
    §11): plain [Unix] sockets, one dedicated domain running the accept
    loop, no external dependencies.

    The server binds a loopback (by default) TCP socket and serves one
    request per connection ([Connection: close]), sequentially — the
    operational surface is scraped every few seconds, not load-tested,
    and sequential handling means handlers never race each other.
    Handler exceptions become 500 responses; they never kill the accept
    loop. *)

type response = {
  status : int;
  content_type : string;
  body : string;
}

val response : ?status:int -> ?content_type:string -> string -> response
(** Defaults: status 200, content type [text/plain; charset=utf-8]. *)

type route = {
  rt_meth : string;  (** "GET" or "POST" *)
  rt_path : string;  (** exact match, e.g. "/metrics"; the query string
                         is split off before matching *)
  rt_handle : query:(string * string) list -> body:string -> response;
      (** [query] holds the percent-decoded [?k=v&...] pairs in request
          order ([[]] when there is no query string) *)
}

val parse_query : string -> (string * string) list
(** Decode a raw query string ("a=1&b=x%20y") into key/value pairs.
    Exposed for tests. *)

type t

val start : ?host:string -> ?read_timeout_s:float -> port:int -> route list -> t
(** Bind [host] (default 127.0.0.1) on [port] (0 picks an ephemeral
    port) and serve the routes on a freshly spawned domain. Unknown
    paths get 404; a known path with the wrong method gets 405; an
    unreadable request gets 400; a client that stalls mid-request for
    longer than [read_timeout_s] (default 10s, wall clock per request)
    gets 408 — a byte-dribbling client cannot wedge the accept domain.
    [SIGPIPE] is ignored process-wide so peers hanging up mid-response
    surface as [EPIPE] (swallowed) rather than a fatal signal. Raises
    [Unix.Unix_error] if the bind fails (port in use, permission). *)

val port : t -> int
(** The actually bound port (useful with [~port:0]). *)

val stop : t -> unit
(** Close the listening socket and join the server domain. In-flight
    requests complete first. Idempotent. *)

val requests_served : t -> int
