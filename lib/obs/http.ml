type response = {
  status : int;
  content_type : string;
  body : string;
}

let response ?(status = 200) ?(content_type = "text/plain; charset=utf-8")
    body =
  { status; content_type; body }

type route = {
  rt_meth : string;
  rt_path : string;
  rt_handle : query:(string * string) list -> body:string -> response;
}

(* -- query strings --------------------------------------------------- *)

let percent_decode s =
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> -1
  in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' when !i + 2 < n && hex s.[!i + 1] >= 0 && hex s.[!i + 2] >= 0 ->
        Buffer.add_char buf
          (Char.chr ((hex s.[!i + 1] * 16) + hex s.[!i + 2]));
        i := !i + 2
    | '+' -> Buffer.add_char buf ' '
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let parse_query qs =
  if qs = "" then []
  else
    List.filter_map
      (fun kv ->
        if kv = "" then None
        else
          match String.index_opt kv '=' with
          | Some i ->
              Some
                ( percent_decode (String.sub kv 0 i),
                  percent_decode
                    (String.sub kv (i + 1) (String.length kv - i - 1)) )
          | None -> Some (percent_decode kv, ""))
      (String.split_on_char '&' qs)

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  mutable server : unit Domain.t option;
  served : int Atomic.t;
  mutable stopped : bool;
}

let m_requests = Metrics.counter "http.requests"
let m_errors = Metrics.counter "http.request_errors"

let reason_of = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let max_head_bytes = 16 * 1024
let max_body_bytes = 1024 * 1024

(* A stalled or byte-dribbling client must not wedge the accept domain:
   every read is bounded by a per-call socket timeout, and the whole
   request read by a wall-clock deadline. *)
exception Timed_out

(* [read_bounded] retries [EINTR] (signals must not abort a request
   mid-read) and turns a receive timeout — or blowing the request
   deadline — into [Timed_out]. *)
let read_bounded ~deadline fd chunk len =
  let rec go () =
    if Unix.gettimeofday () > deadline then raise Timed_out;
    match Unix.read fd chunk 0 len with
    | n -> n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        raise Timed_out
  in
  go ()

(* Read from [fd] until the blank line ending the header block; returns
   (head, leftover-bytes-already-read-past-it). *)
let read_head ~deadline fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  let rec find_end () =
    let s = Buffer.contents buf in
    match
      let rec scan i =
        if i + 3 >= String.length s then None
        else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
                && s.[i + 3] = '\n'
        then Some (i + 4)
        else scan (i + 1)
      in
      scan 0
    with
    | Some stop ->
        Some
          ( String.sub s 0 stop,
            String.sub s stop (String.length s - stop) )
    | None ->
        if Buffer.length buf > max_head_bytes then None
        else begin
          let n = read_bounded ~deadline fd chunk (Bytes.length chunk) in
          if n = 0 then None
          else begin
            Buffer.add_subbytes buf chunk 0 n;
            find_end ()
          end
        end
  in
  find_end ()

let content_length head =
  let lines = String.split_on_char '\n' head in
  List.fold_left
    (fun acc line ->
      match String.index_opt line ':' with
      | Some i
        when String.lowercase_ascii (String.trim (String.sub line 0 i))
             = "content-length" -> (
          let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
          match int_of_string_opt v with Some n when n >= 0 -> Some n | _ -> acc)
      | _ -> acc)
    None lines

let read_body ~deadline fd head leftover =
  match content_length head with
  | None | Some 0 -> Some ""
  | Some n when n > max_body_bytes -> None
  | Some n ->
      let buf = Buffer.create n in
      Buffer.add_string buf leftover;
      let chunk = Bytes.create 4096 in
      let rec fill () =
        if Buffer.length buf >= n then
          Some (String.sub (Buffer.contents buf) 0 n)
        else
          let got =
            read_bounded ~deadline fd chunk (min 4096 (n - Buffer.length buf))
          in
          if got = 0 then None
          else begin
            Buffer.add_subbytes buf chunk 0 got;
            fill ()
          end
      in
      fill ()

(* A client that hung up mid-response (EPIPE with SIGPIPE ignored,
   ECONNRESET): nothing left to tell it — drop the rest quietly rather
   than kill the handler with an uncaught error. *)
let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception
          Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
  in
  go 0

let send fd resp =
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
        Connection: close\r\n\r\n%s"
       resp.status (reason_of resp.status) resp.content_type
       (String.length resp.body) resp.body)

let route_request routes ~meth ~path ~query ~body =
  match
    List.find_opt (fun r -> r.rt_path = path && r.rt_meth = meth) routes
  with
  | Some r -> ( try r.rt_handle ~query ~body with e -> (
      Metrics.incr m_errors;
      response ~status:500 ("handler error: " ^ Printexc.to_string e ^ "\n")))
  | None ->
      if List.exists (fun r -> r.rt_path = path) routes then
        response ~status:405 "method not allowed\n"
      else response ~status:404 "not found\n"

let handle_connection ~read_timeout_s routes fd =
  let deadline = Unix.gettimeofday () +. read_timeout_s in
  match read_head ~deadline fd with
  | None -> send fd (response ~status:400 "bad request\n")
  | exception Timed_out ->
      send fd (response ~status:408 "request read timed out\n")
  | Some (head, leftover) -> (
      let first_line =
        match String.index_opt head '\r' with
        | Some i -> String.sub head 0 i
        | None -> head
      in
      match String.split_on_char ' ' first_line with
      | [ meth; target; version ]
        when String.length version >= 5 && String.sub version 0 5 = "HTTP/" ->
          (* Split the query string off and hand it to the handler as
             decoded key/value pairs (e.g. [/traces?trace_id=...]). *)
          let path, query =
            match String.index_opt target '?' with
            | Some i ->
                ( String.sub target 0 i,
                  parse_query
                    (String.sub target (i + 1) (String.length target - i - 1))
                )
            | None -> (target, [])
          in
          if meth <> "GET" && meth <> "POST" then
            send fd (response ~status:405 "method not allowed\n")
          else (
            match read_body ~deadline fd head leftover with
            | None -> send fd (response ~status:413 "payload too large\n")
            | Some body ->
                send fd (route_request routes ~meth ~path ~query ~body)
            | exception Timed_out ->
                send fd (response ~status:408 "request read timed out\n"))
      | _ -> send fd (response ~status:400 "bad request\n"))

let serve_loop t ~read_timeout_s routes =
  let rec loop () =
    match Unix.select [ t.listen_fd; t.stop_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | readable, _, _ ->
        if List.mem t.stop_r readable then ()
        else begin
          (match Unix.accept t.listen_fd with
          | exception Unix.Unix_error (_, _, _) -> ()
          | fd, _ ->
              Metrics.incr m_requests;
              Atomic.incr t.served;
              (* A per-call receive timeout backs up the wall-clock
                 deadline: a client that sends nothing at all wakes the
                 read with EAGAIN instead of blocking forever. *)
              (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO read_timeout_s
               with Unix.Unix_error (_, _, _) -> ());
              (try handle_connection ~read_timeout_s routes fd
               with _ -> ());
              (try Unix.close fd with Unix.Unix_error (_, _, _) -> ()));
          loop ()
        end
  in
  loop ()

let start ?(host = "127.0.0.1") ?(read_timeout_s = 10.0) ~port routes =
  (* Peers may vanish mid-write; we want EPIPE (handled in write_all),
     not a process-killing signal. *)
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error (_, _, _) -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let stop_r, stop_w = Unix.pipe () in
  let t =
    {
      listen_fd;
      bound_port;
      stop_r;
      stop_w;
      server = None;
      served = Atomic.make 0;
      stopped = false;
    }
  in
  t.server <- Some (Domain.spawn (fun () -> serve_loop t ~read_timeout_s routes));
  t

let port t = t.bound_port
let requests_served t = Atomic.get t.served

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    (* One byte on the pipe unblocks select; the loop then returns. *)
    (try ignore (Unix.write t.stop_w (Bytes.of_string "x") 0 1)
     with Unix.Unix_error (_, _, _) -> ());
    (match t.server with Some d -> Domain.join d | None -> ());
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
      [ t.listen_fd; t.stop_r; t.stop_w ]
  end
