type event = {
  ev_id : int;
  ev_parent : int;
  ev_name : string;
  ev_cat : string;
  ev_trace : string;
  ev_ts_us : float;
  ev_dur_us : float;
  ev_dom : int;
  ev_args : (string * string) list;
}

type span = {
  sp_id : int;
  sp_parent : int;
  sp_name : string;
  sp_cat : string;
  sp_trace : string;
  sp_args : (string * string) list;
  sp_start : float;
}

let null_span =
  { sp_id = 0; sp_parent = 0; sp_name = ""; sp_cat = ""; sp_trace = "";
    sp_args = []; sp_start = 0.0 }

let armed = Atomic.make false
let next_id = Atomic.make 1
let cursor = Atomic.make 0
let default_capacity = 1 lsl 16

(* The ring stores boxed events; racing writers target distinct slots
   until the ring wraps, after which the oldest slot may be overwritten
   mid-read — acceptable for a diagnostics buffer (a reader sees either
   the old or the new event, never a torn one). *)
let ring : event option array ref = ref [||]
let ring_mutex = Mutex.create ()

let ensure_ring () =
  if Array.length !ring = 0 then begin
    Mutex.lock ring_mutex;
    if Array.length !ring = 0 then ring := Array.make default_capacity None;
    Mutex.unlock ring_mutex
  end

let set_capacity n =
  Mutex.lock ring_mutex;
  ring := Array.make (max 1 n) None;
  Atomic.set cursor 0;
  Mutex.unlock ring_mutex

let clear () =
  let r = !ring in
  Array.fill r 0 (Array.length r) None;
  Atomic.set cursor 0

let arm () =
  ensure_ring ();
  Atomic.set armed true

let disarm () = Atomic.set armed false
let is_armed () = Atomic.get armed

let dropped () =
  let cap = Array.length !ring in
  if cap = 0 then 0 else max 0 (Atomic.get cursor - cap)

let capacity () =
  let cap = Array.length !ring in
  if cap = 0 then default_capacity else cap

(* Silent trace loss is an operational fact worth a scrape line: the
   cumulative drop count and the ring size it is relative to. Called by
   the /metrics handlers right before exposition. *)
let m_dropped = Metrics.counter "trace.dropped" ~help:"Trace ring events lost to wrap-around"
let g_capacity = Metrics.gauge "trace.ring_capacity" ~help:"Trace ring slot count"

let update_metrics () =
  Metrics.set_gauge g_capacity (float_of_int (capacity ()));
  let d = dropped () in
  let seen = Metrics.counter_value m_dropped in
  if d > seen then Metrics.add m_dropped (d - seen)

(* Timestamps are microseconds since module load: small enough to render
   nicely in trace viewers, monotone as long as the wall clock is. *)
let t0 = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. t0) *. 1e6

let parent_key = Domain.DLS.new_key (fun () -> 0)
let trace_key = Domain.DLS.new_key (fun () -> "")

(* -- trace ids ------------------------------------------------------- *)
(* 128-bit ids as 32 lowercase hex chars ("" = untraced), produced by a
   splitmix64 walk over a CAS-advanced seed: two mixed outputs per id,
   no lock on the hot path, unique across domains, and distinct across
   processes because the seed folds in the pid and start time. *)

let id_seed =
  Atomic.make
    (Int64.logxor
       (Int64.of_float (Unix.gettimeofday () *. 1e6))
       (Int64.mul (Int64.of_int (Unix.getpid ())) 0x9e3779b97f4a7c15L))

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33))
      0xff51afd7ed558ccdL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33))
      0xc4ceb9fe1a85ec53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let next64 () =
  let rec go () =
    let cur = Atomic.get id_seed in
    let nxt = Int64.add cur 0x9e3779b97f4a7c15L in
    if Atomic.compare_and_set id_seed cur nxt then mix64 nxt else go ()
  in
  go ()

let new_trace_id () = Printf.sprintf "%016Lx%016Lx" (next64 ()) (next64 ())

let current_trace () = Domain.DLS.get trace_key

let with_trace trace f =
  let old = Domain.DLS.get trace_key in
  Domain.DLS.set trace_key trace;
  Fun.protect ~finally:(fun () -> Domain.DLS.set trace_key old) f

let span_id sp = sp.sp_id

let begin_span ?(cat = "") ?(args = []) name =
  if not (Atomic.get armed) then null_span
  else
    {
      sp_id = Atomic.fetch_and_add next_id 1;
      sp_parent = Domain.DLS.get parent_key;
      sp_name = name;
      sp_cat = cat;
      sp_trace = Domain.DLS.get trace_key;
      sp_args = args;
      sp_start = now_us ();
    }

let end_span sp =
  if sp.sp_id <> 0 && Atomic.get armed then begin
    let now = now_us () in
    let ev =
      {
        ev_id = sp.sp_id;
        ev_parent = sp.sp_parent;
        ev_name = sp.sp_name;
        ev_cat = sp.sp_cat;
        ev_trace = sp.sp_trace;
        ev_ts_us = sp.sp_start;
        ev_dur_us = now -. sp.sp_start;
        ev_dom = (Domain.self () :> int);
        ev_args = sp.sp_args;
      }
    in
    let r = !ring in
    let cap = Array.length r in
    if cap > 0 then begin
      let slot = Atomic.fetch_and_add cursor 1 mod cap in
      r.(slot) <- Some ev
    end
  end

let with_span ?cat ?args name f =
  if not (Atomic.get armed) then f ()
  else begin
    let sp = begin_span ?cat ?args name in
    let old = Domain.DLS.get parent_key in
    Domain.DLS.set parent_key sp.sp_id;
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set parent_key old;
        end_span sp)
      f
  end

let current_parent () = Domain.DLS.get parent_key

let with_parent id f =
  let old = Domain.DLS.get parent_key in
  Domain.DLS.set parent_key id;
  Fun.protect ~finally:(fun () -> Domain.DLS.set parent_key old) f

(* The receiving half of propagation: adopt a remote statement's trace
   id and parent span id as this domain's ambient context, so spans
   recorded under [f] stitch beneath the remote caller's span. *)
let with_context ~trace ~parent f =
  let old_trace = Domain.DLS.get trace_key in
  let old_parent = Domain.DLS.get parent_key in
  Domain.DLS.set trace_key trace;
  Domain.DLS.set parent_key parent;
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set trace_key old_trace;
      Domain.DLS.set parent_key old_parent)
    f

let events () =
  let r = !ring in
  let out = ref [] in
  Array.iter (function Some ev -> out := ev :: !out | None -> ()) r;
  List.sort (fun a b -> compare a.ev_ts_us b.ev_ts_us) !out

let children id = List.filter (fun ev -> ev.ev_parent = id) (events ())

let events_of_trace trace =
  List.filter (fun ev -> ev.ev_trace = trace) (events ())

(* ------------------------------------------------------------------ *)
(* Chrome trace JSON                                                   *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_json ?trace_id ?role () =
  let pid = Unix.getpid () in
  let evs =
    match trace_id with
    | Some tr -> events_of_trace tr
    | None -> events ()
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf "," in
  (* A process_name metadata event labels this process's lane in the
     merged Perfetto view ("primary", "follower", "server", ...). *)
  (match role with
  | Some r ->
      sep ();
      Buffer.add_string buf
        (Printf.sprintf
           "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\
            \"args\":{\"name\":\"%s\"}}"
           pid (json_escape r))
  | None -> ());
  List.iter
    (fun ev ->
      sep ();
      Buffer.add_string buf
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{"
           (json_escape ev.ev_name)
           (json_escape (if ev.ev_cat = "" then "graql" else ev.ev_cat))
           ev.ev_ts_us ev.ev_dur_us pid ev.ev_dom);
      let args =
        [ ("id", string_of_int ev.ev_id);
          ("parent", string_of_int ev.ev_parent) ]
        @ (if ev.ev_trace = "" then [] else [ ("trace_id", ev.ev_trace) ])
        @ ev.ev_args
      in
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_string buf ",";
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        args;
      Buffer.add_string buf "}}")
    evs;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

(* Concatenate several Chrome-trace dumps (one per process) into one
   array an operator loads whole in Perfetto: strip each dump's outer
   brackets and splice the bodies. Tolerates whitespace and empty
   dumps; anything without both brackets is skipped. *)
let merge_dumps dumps =
  let body s =
    match (String.index_opt s '[', String.rindex_opt s ']') with
    | Some i, Some j when j > i -> String.trim (String.sub s (i + 1) (j - i - 1))
    | _ -> ""
  in
  let bodies = List.filter (fun b -> b <> "") (List.map body dumps) in
  "[\n" ^ String.concat ",\n" bodies ^ "\n]\n"

let write_chrome_json ?trace_id ?role path =
  let oc = open_out_bin path in
  output_string oc (to_chrome_json ?trace_id ?role ());
  close_out oc

(* GRAQL_TRACE=1 arms tracing at load — the knob a spawned server or
   follower process needs when no CLI flag reaches it. *)
let () =
  match Sys.getenv_opt "GRAQL_TRACE" with
  | Some ("1" | "true" | "on") -> arm ()
  | _ -> ()
