(** Latency SLO tracking (DESIGN.md §11).

    Derives p50/p95/p99 statement latency per statement class from the
    log2 histograms the engine already records
    ([script.stmt_us.<class>]), compares wall times against a
    configurable objective ([GRAQL_SLO_MS], milliseconds), and exports
    the result as [slo.*] gauges (percentiles) and counters (breach /
    burn counts) so both [/metrics] and [stats;] can surface it.

    Percentiles are upper bounds: the smallest power-of-two bucket
    boundary at which the cumulative count reaches the rank — exact to
    within one log2 bucket (≤2× of the true value), which is the
    resolution the histograms store. *)

val objective_ms : unit -> float option
(** Current objective. The first call reads [GRAQL_SLO_MS]; a negative
    or non-numeric value disables the objective with a stderr warning,
    like the slow log's threshold. *)

val set_objective_ms : float option -> unit

val note : class_:string -> float -> unit
(** Record one statement's wall milliseconds against the objective:
    increments [slo.breaches] and [slo.breaches.<class>] when over. A
    no-op (beyond the lazy env read) when no objective is set. *)

type class_stats = {
  sc_class : string;
  sc_count : int;
  sc_p50_ms : float;
  sc_p95_ms : float;
  sc_p99_ms : float;
  sc_breaches : int;
}

val summary : unit -> class_stats list
(** Per-class percentile summary from the current histogram state,
    sorted by class name. Classes are the [<class>] suffixes of
    [script.stmt_us.<class>] histograms. *)

val update_gauges : unit -> unit
(** Publish {!summary} as [slo.<class>.p50_ms]/[.p95_ms]/[.p99_ms]
    gauges plus [slo.objective_ms] (0 when unset) — call before
    dumping or scraping metrics. *)

val percentile : Metrics.hist_snapshot -> float -> float
(** [percentile h q] with [q] in [0,1]: the bucket upper bound at the
    rank, [nan] on an empty histogram. Exposed for the bench harness
    and tests. *)
