(* Per-domain sharded metric cells. Every metric keeps a list of cells,
   one per domain that ever touched it; a domain finds its own cell
   through a domain-local table keyed by metric id, so the hot path is a
   DLS read + small int-keyed hashtable hit + plain store — no shared
   mutable word is ever written by two domains. Cells are published into
   the metric's list with a CAS prepend the first time a domain touches
   the metric; readers fold over the list. *)

type kind = K_counter | K_gauge | K_histogram

let nbuckets = 40
(* Bucket i holds observations in (2^(i-1), 2^i]; values <= 1 land in
   bucket 0. 2^39 us =~ 6.4 days, far beyond any latency we record. *)

type cell = {
  mutable c_count : int; (* counter value / histogram observation count *)
  mutable c_sum : float; (* histogram sum *)
  c_buckets : int array; (* [||] for counters *)
}

type metric = {
  m_id : int;
  m_name : string; (* full registry key, labels included *)
  m_base : string; (* name without the label suffix *)
  m_labels : (string * string) list; (* [] for unlabeled metrics *)
  m_kind : kind;
  mutable m_help : string option;
  m_cells : cell list Atomic.t;
  m_gauge : float Atomic.t; (* gauges are a single cold atomic *)
  m_exemplar : (float * string * float) option Atomic.t;
      (* histogram exemplar: (value, trace id, wall-clock set time) of
         the slowest recently traced observation *)
}

type counter = metric
type gauge = metric
type histogram = metric

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()
let next_id = Atomic.make 0

let kind_name = function
  | K_counter -> "counter"
  | K_gauge -> "gauge"
  | K_histogram -> "histogram"

(* Exposition-format escaping for label values: backslash, double-quote
   and newline. *)
let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

let find_or_create ?help ?(labels = []) name kind =
  let key = name ^ render_labels labels in
  Mutex.lock registry_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mutex)
    (fun () ->
      match Hashtbl.find_opt registry key with
      | Some m ->
          if m.m_kind <> kind then
            invalid_arg
              (Printf.sprintf "Metrics: %S is a %s, not a %s" key
                 (kind_name m.m_kind) (kind_name kind));
          if m.m_help = None then m.m_help <- help;
          m
      | None ->
          let m =
            {
              m_id = Atomic.fetch_and_add next_id 1;
              m_name = key;
              m_base = name;
              m_labels = labels;
              m_kind = kind;
              m_help = help;
              m_cells = Atomic.make [];
              m_gauge = Atomic.make 0.0;
              m_exemplar = Atomic.make None;
            }
          in
          Hashtbl.add registry key m;
          m)

let counter ?help name = find_or_create ?help name K_counter
let gauge ?help name = find_or_create ?help name K_gauge
let histogram ?help name = find_or_create ?help name K_histogram

let counter_l ?help name labels = find_or_create ?help ~labels name K_counter
let gauge_l ?help name labels = find_or_create ?help ~labels name K_gauge

(* The per-domain cell table. The DLS value dies with its domain; the
   cells it pointed to live on in each metric's list, so nothing a dead
   worker recorded is ever lost. *)
let dls_cells : (int, cell) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let cell_of m =
  let tbl = Domain.DLS.get dls_cells in
  match Hashtbl.find_opt tbl m.m_id with
  | Some c -> c
  | None ->
      let c =
        {
          c_count = 0;
          c_sum = 0.0;
          c_buckets =
            (match m.m_kind with
            | K_histogram -> Array.make nbuckets 0
            | K_counter | K_gauge -> [||]);
        }
      in
      let rec publish () =
        let old = Atomic.get m.m_cells in
        if not (Atomic.compare_and_set m.m_cells old (c :: old)) then
          publish ()
      in
      publish ();
      Hashtbl.replace tbl m.m_id c;
      c

let incr m =
  let c = cell_of m in
  c.c_count <- c.c_count + 1

let add m n =
  let c = cell_of m in
  c.c_count <- c.c_count + n

let counter_value m =
  List.fold_left (fun acc c -> acc + c.c_count) 0 (Atomic.get m.m_cells)

let set_gauge m v = Atomic.set m.m_gauge v
let gauge_value m = Atomic.get m.m_gauge

let bucket_of v =
  if v <= 1.0 then 0
  else
    let m, e = Float.frexp v in
    let b = if m = 0.5 then e - 1 else e in
    min (nbuckets - 1) b

(* Exemplar slot policy: keep the slowest traced observation, but let a
   stale champion (older than a minute) be displaced by any fresh traced
   sample — "the trace id of the slowest *recent* observation". *)
let exemplar_max_age_s = 60.0

let observe ?(exemplar = "") m v =
  let c = cell_of m in
  c.c_count <- c.c_count + 1;
  c.c_sum <- c.c_sum +. v;
  c.c_buckets.(bucket_of v) <- c.c_buckets.(bucket_of v) + 1;
  if exemplar <> "" then begin
    let now = Unix.gettimeofday () in
    let rec update () =
      let cur = Atomic.get m.m_exemplar in
      let replace =
        match cur with
        | None -> true
        | Some (ev, _, ets) -> v >= ev || now -. ets > exemplar_max_age_s
      in
      if
        replace
        && not (Atomic.compare_and_set m.m_exemplar cur (Some (v, exemplar, now)))
      then update ()
    in
    update ()
  end

let exemplar m =
  match Atomic.get m.m_exemplar with
  | Some (v, trace, _) -> Some (v, trace)
  | None -> None

(* Cheap single-histogram reads for per-statement delta accounting
   (the ledger): fold the cells without building a full snapshot. *)
let hist_sum m =
  List.fold_left (fun acc c -> acc +. c.c_sum) 0.0 (Atomic.get m.m_cells)

let hist_count m =
  List.fold_left (fun acc c -> acc + c.c_count) 0 (Atomic.get m.m_cells)

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

type hist_snapshot = {
  h_count : int;
  h_sum : float;
  h_buckets : (float * int) list;
}

type snapshot = {
  sn_counters : (string * int) list;
  sn_gauges : (string * float) list;
  sn_histograms : (string * hist_snapshot) list;
}

let all_metrics () =
  Mutex.lock registry_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mutex)
    (fun () ->
      List.sort
        (fun a b -> compare a.m_name b.m_name)
        (Hashtbl.fold (fun _ m acc -> m :: acc) registry []))

let hist_of m =
  let cells = Atomic.get m.m_cells in
  let count = List.fold_left (fun acc c -> acc + c.c_count) 0 cells in
  let sum = List.fold_left (fun acc c -> acc +. c.c_sum) 0.0 cells in
  let buckets = Array.make nbuckets 0 in
  List.iter
    (fun c ->
      Array.iteri (fun i n -> buckets.(i) <- buckets.(i) + n) c.c_buckets)
    cells;
  let nonzero = ref [] in
  for i = nbuckets - 1 downto 0 do
    if buckets.(i) > 0 then
      nonzero := (Float.ldexp 1.0 i, buckets.(i)) :: !nonzero
  done;
  { h_count = count; h_sum = sum; h_buckets = !nonzero }

let snapshot () =
  let ms = all_metrics () in
  {
    sn_counters =
      List.filter_map
        (fun m ->
          if m.m_kind = K_counter then Some (m.m_name, counter_value m)
          else None)
        ms;
    sn_gauges =
      List.filter_map
        (fun m ->
          if m.m_kind = K_gauge then Some (m.m_name, gauge_value m) else None)
        ms;
    sn_histograms =
      List.filter_map
        (fun m ->
          if m.m_kind = K_histogram then Some (m.m_name, hist_of m) else None)
        ms;
  }

let find_counter snap name = List.assoc_opt name snap.sn_counters

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)

let sanitize name =
  String.map
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ch
      | _ -> '_')
    name

let promname name = "graql_" ^ sanitize name

let fmt_float v =
  (* Prometheus wants plain decimal; %g keeps integers short. *)
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

(* Exposition-format escaping: HELP text escapes backslash and newline;
   label values additionally escape the double quote. *)
let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let version = "1.0.0"
let start_time = Unix.gettimeofday ()
let uptime_seconds () = Unix.gettimeofday () -. start_time

let to_prometheus () =
  let buf = Buffer.create 1024 in
  (* TYPE/HELP must appear once per metric family: labeled series of the
     same family share their header lines (the sort on full names keeps
     series of one family adjacent). *)
  let seen_families : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let help n = function
    | Some text ->
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" n (escape_help text))
    | None -> ()
  in
  let header family kind m =
    if not (Hashtbl.mem seen_families family) then begin
      Hashtbl.add seen_families family ();
      help family m.m_help;
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" family kind)
    end
  in
  List.iter
    (fun m ->
      let n = promname m.m_base in
      let lbl = render_labels m.m_labels in
      match m.m_kind with
      | K_counter ->
          header (n ^ "_total") "counter" m;
          Buffer.add_string buf
            (Printf.sprintf "%s_total%s %d\n" n lbl (counter_value m))
      | K_gauge ->
          header n "gauge" m;
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" n lbl (fmt_float (gauge_value m)))
      | K_histogram ->
          let h = hist_of m in
          header n "histogram" m;
          (* OpenMetrics exemplar: the bucket line whose range contains
             the stored sample grows an " # {trace_id=...} value" tail,
             linking the histogram to the trace of its slowest recent
             observation. Emitted at most once per histogram. *)
          let ex = Atomic.get m.m_exemplar in
          let ex_attached = ref false in
          let exemplar_tail le =
            match ex with
            | Some (v, trace, _)
              when (not !ex_attached) && (v <= le || le = infinity) ->
                ex_attached := true;
                Printf.sprintf " # {trace_id=\"%s\"} %s"
                  (escape_label_value trace) (fmt_float v)
            | _ -> ""
          in
          let cum = ref 0 in
          List.iter
            (fun (le, c) ->
              cum := !cum + c;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d%s\n" n
                   (escape_label_value (fmt_float le))
                   !cum (exemplar_tail le)))
            h.h_buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d%s\n" n h.h_count
               (exemplar_tail infinity));
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" n (fmt_float h.h_sum));
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n h.h_count))
    (all_metrics ());
  (* Standard operational gauges, emitted directly: build_info carries
     its facts as labels (our metrics have none), and uptime is computed
     at scrape time rather than stored. *)
  Buffer.add_string buf
    "# HELP graql_build_info Build metadata; always 1.\n\
     # TYPE graql_build_info gauge\n";
  Buffer.add_string buf
    (Printf.sprintf "graql_build_info{version=\"%s\",ocaml=\"%s\"} 1\n"
       (escape_label_value version)
       (escape_label_value Sys.ocaml_version));
  Buffer.add_string buf
    "# HELP graql_uptime_seconds Seconds since process start.\n\
     # TYPE graql_uptime_seconds gauge\n";
  Buffer.add_string buf
    (Printf.sprintf "graql_uptime_seconds %s\n" (fmt_float (uptime_seconds ())));
  Buffer.contents buf

let reset () =
  List.iter
    (fun m ->
      Atomic.set m.m_gauge 0.0;
      Atomic.set m.m_exemplar None;
      List.iter
        (fun c ->
          c.c_count <- 0;
          c.c_sum <- 0.0;
          Array.fill c.c_buckets 0 (Array.length c.c_buckets) 0)
        (Atomic.get m.m_cells))
    (all_metrics ())
