(* Log redaction (DESIGN.md §16): statement text reaches the slow log
   and the query log verbatim, literals included — and literals are
   where user data lives ('alice', 'US'). With GRAQL_LOG_REDACT set,
   every quoted literal is elided to '?' before the text is logged; the
   statement shape stays readable, the payload does not travel.

   The scan mirrors the lexer's literal rules: single or double quotes,
   a doubled quote escaping itself SQL-style. An unterminated literal
   redacts to the end of the text (never leak on a truncation). *)

let enabled_env =
  match Sys.getenv_opt "GRAQL_LOG_REDACT" with
  | Some ("1" | "true" | "on" | "yes") -> true
  | _ -> false

let enabled = ref enabled_env

let set_enabled b = enabled := b
let is_enabled () = !enabled

let redact_string s =
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = '\'' || c = '"' then begin
      (* Skip the literal body, honoring doubled-quote escapes. *)
      Buffer.add_char buf c;
      Buffer.add_char buf '?';
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if s.[!i] = c then
          if !i + 1 < n && s.[!i + 1] = c then i := !i + 2
          else begin
            Buffer.add_char buf c;
            incr i;
            closed := true
          end
        else incr i
      done
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

let statement s = if !enabled then redact_string s else s
