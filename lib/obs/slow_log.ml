type entry = {
  e_stmt : string;
  e_user : string option;
  e_trace : string;
  e_ms : float;
  e_spans : (string * int * float) list; (* name, count, total ms *)
  e_ledger : Ledger.t option;
}

let mutex = Mutex.create ()
let threshold : float option ref = ref None
let env_read = ref false
let sink : (entry -> unit) option ref = ref None
let entries_rev : entry list ref = ref []
let nentries = ref 0
let max_entries = 256

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let env_var = "GRAQL_SLOW_MS"

(* Clamp bad values (negative, NaN, non-numeric) to "disabled" with a
   warning: a monitoring knob must never take the process down. *)
let parse_threshold raw =
  match float_of_string_opt raw with
  | Some v when v >= 0.0 && Float.is_finite v -> Some v
  | Some _ | None ->
      Printf.eprintf
        "graql: warning: ignoring %s=%S (want a non-negative number of \
         milliseconds); slow log disabled\n%!"
        env_var raw;
      None

let threshold_ms () =
  locked (fun () ->
      if not !env_read then begin
        env_read := true;
        match Sys.getenv_opt env_var with
        | None | Some "" -> ()
        | Some raw -> (
            match parse_threshold raw with
            | Some v ->
                threshold := Some v;
                (* Span summaries need span data: the slow log arms
                   tracing. *)
                Trace.arm ()
            | None -> ())
      end;
      !threshold)

let set_threshold_ms t =
  locked (fun () ->
      env_read := true;
      threshold := t);
  (* Outside the lock: Trace has its own synchronization. *)
  if t <> None then Trace.arm ()

let set_sink s = locked (fun () -> sink := s)

let note ?user ?(trace = "") ?ledger ~stmt ~ms ~spans () =
  let entry =
    { e_stmt = Redact.statement stmt; e_user = user; e_trace = trace;
      e_ms = ms; e_spans = spans; e_ledger = ledger }
  in
  let s =
    locked (fun () ->
        entries_rev := entry :: !entries_rev;
        incr nentries;
        if !nentries > max_entries then begin
          entries_rev := List.filteri (fun i _ -> i < max_entries) !entries_rev;
          nentries := max_entries
        end;
        !sink)
  in
  match s with Some f -> f entry | None -> ()

let entries () = locked (fun () -> List.rev !entries_rev)

let clear () =
  locked (fun () ->
      entries_rev := [];
      nentries := 0)

let truncate_stmt s =
  let s = String.map (fun c -> if c = '\n' then ' ' else c) s in
  if String.length s <= 120 then s else String.sub s 0 117 ^ "..."

let to_string e =
  let spans =
    match e.e_spans with
    | [] -> ""
    | l ->
        " ["
        ^ String.concat "; "
            (List.map
               (fun (name, count, ms) ->
                 Printf.sprintf "%s x%d %.1fms" name count ms)
               l)
        ^ "]"
  in
  let who = match e.e_user with Some u -> " user=" ^ u | None -> "" in
  let tr = if e.e_trace = "" then "" else " trace=" ^ e.e_trace in
  let resources =
    match e.e_ledger with
    | Some lg -> "\n  resources: " ^ Ledger.summary lg
    | None -> ""
  in
  Printf.sprintf "slow statement (%.1f ms)%s%s: %s%s%s" e.e_ms who tr
    (truncate_stmt e.e_stmt) spans resources

let entry_to_json e =
  let module Json = Graql_util.Json in
  let user =
    match e.e_user with
    | Some u -> Printf.sprintf "\"user\": %s, " (Json.quote u)
    | None -> ""
  in
  let trace =
    if e.e_trace = "" then ""
    else Printf.sprintf "\"trace_id\": %s, " (Json.quote e.e_trace)
  in
  let ledger =
    match e.e_ledger with
    | Some lg -> Printf.sprintf ", \"ledger\": %s" (Ledger.to_json lg)
    | None -> ""
  in
  Printf.sprintf "{%s%s\"stmt\": %s, \"wall_ms\": %.3f, \"spans\": [%s]%s}"
    user trace (Json.quote e.e_stmt) e.e_ms
    (String.concat ", "
       (List.map
          (fun (name, count, ms) ->
            Printf.sprintf "{\"name\": %s, \"count\": %d, \"ms\": %.3f}"
              (Json.quote name) count ms)
          e.e_spans))
    ledger

let to_json () =
  "[" ^ String.concat ",\n " (List.map entry_to_json (entries ())) ^ "]\n"
