(** Structured query log (DESIGN.md §11): one JSON line per executed
    statement, written to a file sink ([GRAQL_QUERY_LOG] / CLI
    [--query-log]) or an arbitrary sink installed by an embedder.

    Emission is engine-side ({!Graql_engine.Script_exec} builds one
    {!record} per statement outcome); this module owns the query-id
    counter, the ambient user (set per script by the GEMS server), and
    the serialization. When no sink is installed, {!log} is a single
    atomic load. *)

type outcome = Ok | Degraded | Failed | Timeout

val outcome_name : outcome -> string
(** "ok" | "degraded" | "failed" | "timeout". *)

type record = {
  r_id : int;  (** monotonically assigned, process-wide *)
  r_ts : float;  (** wall clock, seconds since the epoch *)
  r_user : string option;
  r_trace : string;  (** trace id; "" = untraced (field omitted) *)
  r_kind : string;  (** statement operation label, e.g. "ingest:Offers" *)
  r_ms : float;
  r_rows : int;
  r_outcome : outcome;
  r_retries : int;
  r_failovers : int;
  r_error : string option;  (** present iff failed/timeout *)
  r_ledger : Ledger.t option;
      (** per-statement resource accounting, when captured *)
}

val next_id : unit -> int
(** Allocate the next query id (also stamps [r_id] implicitly for
    callers that build records themselves). *)

val enabled : unit -> bool
(** True iff a sink is installed. The first call reads
    [GRAQL_QUERY_LOG] and opens that file (append mode) as the sink;
    an unopenable path prints a warning to stderr and disables the
    log. *)

val open_file : string -> unit
(** Install a file sink (append mode, line-buffered via flush per
    record). Replaces any previous sink; raises [Sys_error] on an
    unopenable path. *)

val set_sink : (string -> unit) option -> unit
(** Install an arbitrary sink receiving one JSON line (no trailing
    newline) per record; [None] disables and closes any open file. *)

val log : record -> unit
(** Serialize and emit, if enabled. Thread-safe. *)

val json_of_record : record -> string
(** The JSON object for one record, without a trailing newline. A
    non-empty [r_trace] becomes a ["trace_id"] field and a captured
    ledger a nested ["ledger"] object; statement and error text pass
    through {!Redact.statement} ([GRAQL_LOG_REDACT]). *)

val set_user : string option -> unit
(** Ambient user stamped into subsequent records (the GEMS server sets
    it around each connection's script). Process-global default; see
    {!set_domain_user} for concurrent servers. *)

val set_domain_user : string option option -> unit
(** Per-domain override of the ambient user: [Some u] makes this domain
    attribute records to [u] regardless of the global default; [None]
    restores the global default. The serve layer runs one connection per
    domain and sets this at authentication time. *)

val current_user : unit -> string option

val close : unit -> unit
(** Flush and close the file sink, if any; further records are
    dropped until a sink is installed again. *)
