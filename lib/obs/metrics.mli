(** Process-wide metrics registry: named counters, gauges and log-scale
    histograms (DESIGN.md §10).

    Counters and histograms are domain-safe without contended atomics on
    the hot path: each domain owns a private cell per metric (reached
    through domain-local storage), and readers merge the cells. A counter
    increment is therefore a plain store into domain-owned memory; only
    {!snapshot} and {!to_prometheus} pay for the merge.

    Metric values read while other domains are actively recording may lag
    by a few updates; values read at a quiescent point (after
    [Domain_pool.run_tasks] has joined, which establishes the necessary
    happens-before edge) are exact.

    Naming convention: [layer.metric] — e.g. [path.step_rows],
    [pool.task_wait_us]. Counters under the [sched.*] and [fault.*]
    prefixes describe scheduling work (task counts, dispatch retries) and
    are expected to vary with the domain count; every other counter is
    semantic and must be invariant across domain counts (enforced by the
    metrics-consistency CI job). *)

type counter
type gauge
type histogram

val counter : ?help:string -> string -> counter
(** Find or create. Raises [Invalid_argument] if the name is already
    registered as a different metric kind. [help] becomes the metric's
    [# HELP] line in the Prometheus exposition (first writer wins). *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val counter_l : ?help:string -> string -> (string * string) list -> counter
(** Labeled counter series: [counter_l "serve.shed_total"
    [("reason", "queue_full")]] registers a distinct counter whose
    Prometheus line is [graql_serve_shed_total{reason="queue_full"}].
    Series of the same family share one [# TYPE]/[# HELP] header. In
    {!snapshot} the counter appears under its full key, labels
    included. *)

val gauge : ?help:string -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val gauge_l : ?help:string -> string -> (string * string) list -> gauge
(** Labeled gauge series; see {!counter_l}. *)

val histogram : ?help:string -> string -> histogram
(** Log-scale histogram: bucket [i] counts observations in
    [(2^(i-1), 2^i]]; values ≤ 1 land in bucket 0. Suited to
    microsecond latencies (last bucket ≈ 6 days). *)

val observe : ?exemplar:string -> histogram -> float -> unit
(** Record one observation. A non-empty [exemplar] (a trace id) makes
    the observation a candidate for the histogram's exemplar slot: the
    slot keeps the slowest traced observation, except that a champion
    older than a minute is displaced by any fresh traced sample. *)

val exemplar : histogram -> (float * string) option
(** The stored exemplar, as (observed value, trace id). *)

val hist_sum : histogram -> float
val hist_count : histogram -> int
(** Single-histogram reads (sum of observed values / observation
    count) without the cost of a full {!snapshot} — the ledger's
    before/after delta primitives. *)

type hist_snapshot = {
  h_count : int;
  h_sum : float;
  h_buckets : (float * int) list;
      (** (inclusive upper bound, count in bucket), non-cumulative;
          zero buckets omitted *)
}

type snapshot = {
  sn_counters : (string * int) list;  (** sorted by name *)
  sn_gauges : (string * float) list;
  sn_histograms : (string * hist_snapshot) list;
}

val snapshot : unit -> snapshot

val find_counter : snapshot -> string -> int option

val to_prometheus : unit -> string
(** Prometheus text exposition format. Metric names are prefixed with
    [graql_] and sanitized ('.' and any other illegal character become
    '_'); histograms are emitted with cumulative [_bucket{le=...}]
    series plus [_sum] and [_count]. [# HELP] text and label values are
    escaped per the exposition format (backslash, double-quote,
    newline). A histogram with an {!exemplar} appends the OpenMetrics
    [# {trace_id="..."} value] tail to the bucket line containing the
    exemplar's value. The dump
    always ends with [graql_build_info] (version and OCaml release as
    labels, value 1) and [graql_uptime_seconds]. *)

val escape_help : string -> string
(** Exposition-format escaping for [# HELP] text: backslash and
    newline. *)

val escape_label_value : string -> string
(** Exposition-format escaping for label values: backslash,
    double-quote and newline. *)

val version : string
(** The version stamped into [graql_build_info]. *)

val uptime_seconds : unit -> float

val reset : unit -> unit
(** Zero every registered metric (cells stay registered). Test use only:
    callers must ensure no domain is concurrently recording. *)
