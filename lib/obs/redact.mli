(** Statement-text redaction for logs (DESIGN.md §16).

    Quoted string literals are where user data lives in a statement;
    with [GRAQL_LOG_REDACT=1] (read at load) every literal is elided to
    ['?'] before statement text reaches the slow log or the query log.
    The statement shape stays readable; the payload does not travel. *)

val statement : string -> string
(** The text to log: verbatim when redaction is off, literals elided
    to ['?'] when it is on. Honors single and double quotes and the
    SQL-style doubled-quote escape; an unterminated literal is elided
    to the end of the text. *)

val redact_string : string -> string
(** Unconditional redaction (what {!statement} applies when enabled). *)

val is_enabled : unit -> bool

val set_enabled : bool -> unit
(** Override the environment default (tests). *)
