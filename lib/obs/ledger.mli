(** Per-statement resource ledger (DESIGN.md §16): before/after deltas
    over the process-wide registries, attributing to one statement the
    rows it scanned (table + path + shard + RPQ counters), the words it
    allocated ([Gc.quick_stat]), its domain-pool queue wait vs. run
    time, and the fault retries/failovers it absorbed.

    Attribution is exact when statements execute sequentially;
    overlapping statements in a parallel wave may swap shares of the
    shared counters (the wave's totals are always right) — the same
    caveat the query log's retry counts carry. *)

type snapshot
(** The "before" reading. *)

val capturing : unit -> bool
(** True while at least one ledger bracket ({!start} without its
    {!finish}) is open anywhere in the process — the gate scan sites
    check before paying for a bytes estimate. One atomic load. *)

val note_scan_bytes : int -> unit
(** Record an estimated scanned-bytes amount (scan sites call this
    only when {!capturing} holds). *)

type t = {
  lg_rows_scanned : int;
  lg_bytes_scanned : int;  (** caller-supplied estimate; 0 = unknown *)
  lg_rows_out : int;
  lg_minor_words : float;
  lg_major_words : float;
  lg_pool_wait_us : float;
  lg_pool_run_us : float;
  lg_retries : int;
  lg_failovers : int;
}

val start : unit -> snapshot

val finish : ?rows_out:int -> ?bytes_scanned:int -> snapshot -> t
(** Read the registries again and return the deltas. [rows_out] is a
    pass-through for what only the executor knows; [bytes_scanned]
    adds to the [table.scan_bytes] delta recorded by scan sites while
    the bracket was open. *)

val to_json : t -> string
(** One JSON object, embeddable as a query-log line's ["ledger"]
    field. *)

val summary : t -> string
(** One human-readable line for EXPLAIN ANALYZE and the slow log. *)
