(* Per-statement resource ledger (DESIGN.md §16): what one statement
   actually consumed, measured as before/after deltas over the
   process-wide registries — rows scanned (table, path, shard and RPQ
   counters), GC allocation (Gc.quick_stat word deltas), pool queue
   wait vs. run time, and fault retries/failovers. The caller feeds in
   what only it knows: rows produced and a bytes-scanned estimate.

   Attribution caveat (same as the query log's retry counts): deltas
   over shared counters are exact when statements execute one at a
   time; overlapping statements in a parallel wave may swap shares.
   The totals across a wave are always right. *)

(* Handles resolved once; the names must match the recording sites
   (table_exec, path_exec, shard, rpq, domain_pool, script_exec). *)
let scan_counters =
  lazy
    (List.map
       (fun name -> Metrics.counter name)
       [
         "table.scan_rows"; "path.seed_rows"; "path.step_rows";
         "shard.scan_rows"; "rpq.visited_pairs";
       ])

let c_fault_retries = lazy (Metrics.counter "fault.retries")
let c_sched_retries = lazy (Metrics.counter "sched.retries")
let c_failovers = lazy (Metrics.counter "fault.failovers")
let c_scan_bytes = lazy (Metrics.counter "table.scan_bytes")
let h_pool_wait = lazy (Metrics.histogram "pool.task_wait_us")
let h_pool_run = lazy (Metrics.histogram "pool.task_run_us")

(* Bytes-scanned estimation ([Table.approx_bytes] at every scan) walks
   dictionary heaps — too costly to run unconditionally. Scan sites ask
   [capturing ()] (one atomic load) and only record bytes while at
   least one ledger bracket is open. *)
let active = Atomic.make 0
let capturing () = Atomic.get active > 0
let note_scan_bytes n = if n > 0 then Metrics.add (Lazy.force c_scan_bytes) n

type snapshot = {
  s_scans : int list;
  s_bytes : int;
  s_minor : float;
  s_major : float;
  s_wait_us : float;
  s_run_us : float;
  s_retries : int;
  s_failovers : int;
}

type t = {
  lg_rows_scanned : int;
  lg_bytes_scanned : int;  (** estimate; 0 = unknown *)
  lg_rows_out : int;
  lg_minor_words : float;
  lg_major_words : float;
  lg_pool_wait_us : float;
  lg_pool_run_us : float;
  lg_retries : int;
  lg_failovers : int;
}

let start () =
  let gc = Gc.quick_stat () in
  Atomic.incr active;
  {
    s_scans = List.map Metrics.counter_value (Lazy.force scan_counters);
    s_bytes = Metrics.counter_value (Lazy.force c_scan_bytes);
    s_minor = gc.Gc.minor_words;
    s_major = gc.Gc.major_words;
    s_wait_us = Metrics.hist_sum (Lazy.force h_pool_wait);
    s_run_us = Metrics.hist_sum (Lazy.force h_pool_run);
    s_retries =
      Metrics.counter_value (Lazy.force c_fault_retries)
      + Metrics.counter_value (Lazy.force c_sched_retries);
    s_failovers = Metrics.counter_value (Lazy.force c_failovers);
  }

let finish ?(rows_out = 0) ?(bytes_scanned = 0) s =
  let gc = Gc.quick_stat () in
  Atomic.decr active;
  let scans_now = List.map Metrics.counter_value (Lazy.force scan_counters) in
  let rows_scanned =
    List.fold_left2 (fun acc now before -> acc + max 0 (now - before)) 0
      scans_now s.s_scans
  in
  let bytes_delta =
    max 0 (Metrics.counter_value (Lazy.force c_scan_bytes) - s.s_bytes)
  in
  {
    lg_rows_scanned = rows_scanned;
    lg_bytes_scanned = bytes_scanned + bytes_delta;
    lg_rows_out = rows_out;
    lg_minor_words = Float.max 0.0 (gc.Gc.minor_words -. s.s_minor);
    lg_major_words = Float.max 0.0 (gc.Gc.major_words -. s.s_major);
    lg_pool_wait_us =
      Float.max 0.0 (Metrics.hist_sum (Lazy.force h_pool_wait) -. s.s_wait_us);
    lg_pool_run_us =
      Float.max 0.0 (Metrics.hist_sum (Lazy.force h_pool_run) -. s.s_run_us);
    lg_retries =
      max 0
        (Metrics.counter_value (Lazy.force c_fault_retries)
         + Metrics.counter_value (Lazy.force c_sched_retries)
         - s.s_retries);
    lg_failovers =
      max 0 (Metrics.counter_value (Lazy.force c_failovers) - s.s_failovers);
  }

let to_json lg =
  Printf.sprintf
    "{\"rows_scanned\":%d,\"bytes_scanned\":%d,\"rows_out\":%d,\
     \"minor_words\":%.0f,\"major_words\":%.0f,\"pool_wait_us\":%.1f,\
     \"pool_run_us\":%.1f,\"retries\":%d,\"failovers\":%d}"
    lg.lg_rows_scanned lg.lg_bytes_scanned lg.lg_rows_out lg.lg_minor_words
    lg.lg_major_words lg.lg_pool_wait_us lg.lg_pool_run_us lg.lg_retries
    lg.lg_failovers

(* One human line for EXPLAIN ANALYZE and the slow log. *)
let summary lg =
  let words w =
    if w >= 1e6 then Printf.sprintf "%.1fM" (w /. 1e6)
    else if w >= 1e3 then Printf.sprintf "%.1fk" (w /. 1e3)
    else Printf.sprintf "%.0f" w
  in
  let bytes =
    if lg.lg_bytes_scanned > 0 then
      Printf.sprintf " (~%d KiB)" ((lg.lg_bytes_scanned + 1023) / 1024)
    else ""
  in
  let faults =
    if lg.lg_retries > 0 || lg.lg_failovers > 0 then
      Printf.sprintf ", %d retries, %d failovers" lg.lg_retries lg.lg_failovers
    else ""
  in
  Printf.sprintf
    "scanned %d rows%s, produced %d, gc %s minor + %s major words, pool \
     %.1f/%.1f ms wait/run%s"
    lg.lg_rows_scanned bytes lg.lg_rows_out (words lg.lg_minor_words)
    (words lg.lg_major_words)
    (lg.lg_pool_wait_us /. 1000.0)
    (lg.lg_pool_run_us /. 1000.0)
    faults
