module Json = Graql_util.Json

type outcome = Ok | Degraded | Failed | Timeout

let outcome_name = function
  | Ok -> "ok"
  | Degraded -> "degraded"
  | Failed -> "failed"
  | Timeout -> "timeout"

type record = {
  r_id : int;
  r_ts : float;
  r_user : string option;
  r_trace : string;
  r_kind : string;
  r_ms : float;
  r_rows : int;
  r_outcome : outcome;
  r_retries : int;
  r_failovers : int;
  r_error : string option;
  r_ledger : Ledger.t option;
}

let id_counter = Atomic.make 0
let next_id () = Atomic.fetch_and_add id_counter 1

(* The sink is read on every statement; keep the fast path (no sink, no
   env var) to one atomic load of [installed]. *)
let installed = Atomic.make false
let mutex = Mutex.create ()
let sink : (string -> unit) option ref = ref None
let file : out_channel option ref = ref None
let env_read = ref false
let env_var = "GRAQL_QUERY_LOG"

let user : string option ref = ref None

(* Per-domain override: the serve layer runs one connection per domain,
   each with its own authenticated user; a process-global ref would let
   concurrent connections clobber each other's attribution. The global
   [set_user] remains the default for single-session embedders. *)
let dls_user : string option option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_user u = user := u
let set_domain_user u = Domain.DLS.set dls_user u

let current_user () =
  match Domain.DLS.get dls_user with Some u -> u | None -> !user

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let close_file_locked () =
  match !file with
  | Some oc ->
      (try close_out oc with Sys_error _ -> ());
      file := None
  | None -> ()

let install_locked s =
  sink := s;
  Atomic.set installed (s <> None)

let open_file path =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  locked (fun () ->
      env_read := true;
      close_file_locked ();
      file := Some oc;
      install_locked
        (Some
           (fun line ->
             output_string oc line;
             output_char oc '\n';
             flush oc)))

let set_sink s =
  locked (fun () ->
      env_read := true;
      close_file_locked ();
      install_locked s)

let read_env_once () =
  locked (fun () ->
      if not !env_read then begin
        env_read := true;
        match Sys.getenv_opt env_var with
        | None | Some "" -> ()
        | Some path -> (
            match open_out_gen [ Open_append; Open_creat ] 0o644 path with
            | oc ->
                file := Some oc;
                install_locked
                  (Some
                     (fun line ->
                       output_string oc line;
                       output_char oc '\n';
                       flush oc))
            | exception Sys_error msg ->
                Printf.eprintf
                  "graql: warning: cannot open %s=%S (%s); query log \
                   disabled\n%!"
                  env_var path msg)
      end)

let enabled () =
  if not !env_read then read_env_once ();
  Atomic.get installed

let json_of_record r =
  let buf = Buffer.create 192 in
  Buffer.add_string buf
    (Printf.sprintf "{\"id\": %d, \"ts\": %.6f, " r.r_id r.r_ts);
  (match r.r_user with
  | Some u -> Buffer.add_string buf (Printf.sprintf "\"user\": %s, " (Json.quote u))
  | None -> ());
  if r.r_trace <> "" then
    Buffer.add_string buf
      (Printf.sprintf "\"trace_id\": %s, " (Json.quote r.r_trace));
  Buffer.add_string buf
    (Printf.sprintf
       "\"stmt\": %s, \"wall_ms\": %.3f, \"rows\": %d, \"outcome\": %s, \
        \"retries\": %d, \"failovers\": %d"
       (Json.quote (Redact.statement r.r_kind))
       r.r_ms r.r_rows
       (Json.quote (outcome_name r.r_outcome))
       r.r_retries r.r_failovers);
  (match r.r_error with
  | Some e ->
      Buffer.add_string buf
        (Printf.sprintf ", \"error\": %s" (Json.quote (Redact.statement e)))
  | None -> ());
  (match r.r_ledger with
  | Some lg ->
      Buffer.add_string buf
        (Printf.sprintf ", \"ledger\": %s" (Ledger.to_json lg))
  | None -> ());
  Buffer.add_char buf '}';
  Buffer.contents buf

let log r =
  if enabled () then begin
    let line = json_of_record r in
    let s = locked (fun () -> !sink) in
    match s with Some f -> f line | None -> ()
  end

let close () =
  locked (fun () ->
      close_file_locked ();
      install_locked None)
