type sample = { sa_label : string; sa_rows : int; sa_ms : float }

type collector = {
  mutable paths_rev : sample list list; (* completed+current paths, reversed *)
  mutable in_path : bool;
  mutable ops_rev : sample list;
}

let create () = { paths_rev = []; in_path = false; ops_rev = [] }

let begin_path c =
  c.paths_rev <- [] :: c.paths_rev;
  c.in_path <- true

let note_step c ~label ~rows ~ms =
  let s = { sa_label = label; sa_rows = rows; sa_ms = ms } in
  match c.paths_rev with
  | cur :: rest when c.in_path -> c.paths_rev <- (s :: cur) :: rest
  | _ ->
      (* A step outside any path: keep it rather than lose it. *)
      c.paths_rev <- [ s ] :: c.paths_rev

let note_op c ~label ~rows ~ms =
  c.ops_rev <- { sa_label = label; sa_rows = rows; sa_ms = ms } :: c.ops_rev

let paths c = List.rev_map List.rev c.paths_rev
let ops c = List.rev c.ops_rev

(* Ambient collector: installed by the EXPLAIN ANALYZE driver on the
   domain that executes the statement; executors peek at it so profiling
   needs no signature change through the engine. *)
let dls_current : collector option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get dls_current

let with_collector c f =
  let old = Domain.DLS.get dls_current in
  Domain.DLS.set dls_current (Some c);
  Fun.protect ~finally:(fun () -> Domain.DLS.set dls_current old) f
