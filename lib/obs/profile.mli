(** Actual-execution samples for EXPLAIN ANALYZE.

    A [collector] gathers what really happened while a statement runs:
    per-path traversal steps (label, frontier size, wall time) and
    per-operator samples for relational statements. The profiling driver
    ({!Graql_engine.Profile_exec}) installs one ambiently with
    {!with_collector}; executors record into {!current} when present and
    pay one domain-local read when not. Collectors are single-domain:
    the driver runs the statement on the installing domain, and
    intra-operator parallelism completes before a sample is recorded. *)

type sample = {
  sa_label : string;
  sa_rows : int;  (** frontier size / operator output rows *)
  sa_ms : float;
}

type collector

val create : unit -> collector

val begin_path : collector -> unit
(** Start a new path; subsequent {!note_step}s belong to it. *)

val note_step : collector -> label:string -> rows:int -> ms:float -> unit
(** Record one traversal step (the seed counts as the first step). *)

val note_op : collector -> label:string -> rows:int -> ms:float -> unit
(** Record one relational operator. *)

val paths : collector -> sample list list
(** Steps per path, in execution order. *)

val ops : collector -> sample list

val with_collector : collector -> (unit -> 'a) -> 'a
val current : unit -> collector option
