let mutex = Mutex.create ()
let objective : float option ref = ref None
let env_read = ref false
let env_var = "GRAQL_SLO_MS"

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let objective_ms () =
  locked (fun () ->
      if not !env_read then begin
        env_read := true;
        match Sys.getenv_opt env_var with
        | None | Some "" -> ()
        | Some raw -> (
            match float_of_string_opt raw with
            | Some v when v >= 0.0 && Float.is_finite v -> objective := Some v
            | Some _ | None ->
                Printf.eprintf
                  "graql: warning: ignoring %s=%S (want a non-negative \
                   number of milliseconds); SLO objective disabled\n%!"
                  env_var raw)
      end;
      !objective)

let set_objective_ms o =
  locked (fun () ->
      env_read := true;
      objective := o)

let m_breaches = Metrics.counter "slo.breaches"

(* Per-class breach counters are created on first breach; the class set
   is small (one per statement kind). *)
let breach_counter class_ = Metrics.counter ("slo.breaches." ^ class_)

let note ~class_ ms =
  match objective_ms () with
  | Some obj when ms > obj ->
      Metrics.incr m_breaches;
      Metrics.incr (breach_counter class_)
  | Some _ | None -> ()

type class_stats = {
  sc_class : string;
  sc_count : int;
  sc_p50_ms : float;
  sc_p95_ms : float;
  sc_p99_ms : float;
  sc_breaches : int;
}

let percentile (h : Metrics.hist_snapshot) q =
  if h.Metrics.h_count = 0 then nan
  else begin
    let rank = float_of_int h.Metrics.h_count *. q in
    let rec scan cum = function
      | [] -> nan
      | (ub, n) :: rest ->
          let cum = cum + n in
          if float_of_int cum >= rank then ub else scan cum rest
    in
    scan 0 h.Metrics.h_buckets
  end

let class_prefix = "script.stmt_us."

let summary () =
  let sn = Metrics.snapshot () in
  let breaches class_ =
    Option.value ~default:0
      (Metrics.find_counter sn ("slo.breaches." ^ class_))
  in
  List.filter_map
    (fun (name, h) ->
      let pl = String.length class_prefix in
      if
        String.length name > pl
        && String.sub name 0 pl = class_prefix
        && h.Metrics.h_count > 0
      then
        let class_ = String.sub name pl (String.length name - pl) in
        Some
          {
            sc_class = class_;
            sc_count = h.Metrics.h_count;
            sc_p50_ms = percentile h 0.50 /. 1000.0;
            sc_p95_ms = percentile h 0.95 /. 1000.0;
            sc_p99_ms = percentile h 0.99 /. 1000.0;
            sc_breaches = breaches class_;
          }
      else None)
    sn.Metrics.sn_histograms

let update_gauges () =
  Metrics.set_gauge
    (Metrics.gauge "slo.objective_ms")
    (Option.value ~default:0.0 (objective_ms ()));
  List.iter
    (fun s ->
      let set suffix v =
        Metrics.set_gauge (Metrics.gauge ("slo." ^ s.sc_class ^ suffix)) v
      in
      set ".p50_ms" s.sc_p50_ms;
      set ".p95_ms" s.sc_p95_ms;
      set ".p99_ms" s.sc_p99_ms)
    (summary ())
