(** Slow-statement log: statements whose wall time exceeds a threshold
    are recorded with a summary of their child spans. Off by default;
    enabled by [GRAQL_SLOW_MS] (milliseconds) or {!set_threshold_ms}.
    Enabling it arms {!Trace} so the span summaries have data. *)

type entry = {
  e_stmt : string;
      (** pretty-printed statement, after {!Redact.statement} *)
  e_user : string option;
  e_trace : string;  (** trace id; "" = untraced *)
  e_ms : float;
  e_spans : (string * int * float) list;
      (** per child-span name: (name, count, total ms), slowest first *)
  e_ledger : Ledger.t option;
      (** per-statement resource accounting, when captured *)
}

val threshold_ms : unit -> float option
(** Current threshold. The first call reads [GRAQL_SLOW_MS] (and arms
    tracing when it is set). A negative or non-numeric value is clamped
    to "disabled" with a warning on stderr, never an exception. *)

val parse_threshold : string -> float option
(** The [GRAQL_SLOW_MS] value parser: [Some ms] for a finite
    non-negative number, otherwise [None] after printing the clamp
    warning to stderr. Exposed for tests. *)

val set_threshold_ms : float option -> unit
(** Override the threshold ([Some ms] also arms tracing; [None]
    disables the log but leaves tracing as it is). *)

val set_sink : (entry -> unit) option -> unit
(** Called on every recorded entry — the CLI installs a stderr
    printer. *)

val note :
  ?user:string ->
  ?trace:string ->
  ?ledger:Ledger.t ->
  stmt:string ->
  ms:float ->
  spans:(string * int * float) list ->
  unit ->
  unit
(** Record an entry (engine use; keeps the most recent 256). The
    statement text is redacted per [GRAQL_LOG_REDACT] before storage. *)

val entries : unit -> entry list
(** Recorded entries, oldest first. *)

val clear : unit -> unit
val to_string : entry -> string

val to_json : unit -> string
(** The recorded ring as a JSON array (oldest first) — the payload of
    the [/slowlog] endpoint. *)
