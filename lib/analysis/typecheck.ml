module Ast = Graql_lang.Ast
module Loc = Graql_lang.Loc
module Schema = Graql_storage.Schema
module Dtype = Graql_storage.Dtype

type ctx = {
  meta : Meta.t;
  params : (string, Dtype.t) Hashtbl.t;
  (* Result tables whose schema we could not infer statically: referencing
     them is legal, but column checks are skipped. *)
  untyped : (string, unit) Hashtbl.t;
  mutable diags : Diag.t list;
}

let err ctx loc fmt =
  Printf.ksprintf
    (fun message ->
      ctx.diags <- { Diag.severity = Error; loc; message } :: ctx.diags)
    fmt

let warn ctx loc fmt =
  Printf.ksprintf
    (fun message ->
      ctx.diags <- { Diag.severity = Warning; loc; message } :: ctx.diags)
    fmt

let dtype_of_lit = function
  | Ast.L_int _ -> Some Dtype.Int
  | Ast.L_float _ -> Some Dtype.Float
  | Ast.L_string _ -> Some (Dtype.Varchar 255)
  | Ast.L_bool _ -> Some Dtype.Bool
  | Ast.L_null -> None

(* May two types meet in a comparison? Strings compare with dates (date
   literals are written as strings); numerics cross-compare; the rest must
   match. The paper's canonical error — date vs float — lands here. *)
let comparable a b =
  Dtype.compatible a b
  || (Dtype.is_numeric a && Dtype.is_numeric b)
  || (match (a, b) with
     | Dtype.Varchar _, Dtype.Date | Dtype.Date, Dtype.Varchar _ -> true
     | _ -> false)

(** Attribute resolution outcome. *)
type resolution =
  | R_type of Dtype.t
  | R_unknown  (** legal reference whose type we cannot pin down *)
  | R_error of string

type resolver = qual:string option -> attr:string -> Loc.t -> resolution

let schema_lookup schema attr =
  Option.map (Schema.col_dtype schema) (Schema.find schema attr)

(* ------------------------------------------------------------------ *)
(* Expression typing                                                   *)

let rec infer ctx (resolve : resolver) expr : Dtype.t option =
  match expr with
  | Ast.E_lit (l, _) -> dtype_of_lit l
  | Ast.E_param (name, _) -> Hashtbl.find_opt ctx.params name
  | Ast.E_attr (qual, attr, loc) -> (
      match resolve ~qual ~attr loc with
      | R_type t -> Some t
      | R_unknown -> None
      | R_error msg ->
          err ctx loc "%s" msg;
          None)
  | Ast.E_binop (op, a, b, loc) -> infer_binop ctx resolve op a b loc
  | Ast.E_unop (Ast.Not, a, loc) ->
      (match infer ctx resolve a with
      | Some Dtype.Bool | None -> ()
      | Some t -> err ctx loc "operand of 'not' must be boolean, got %s" (Dtype.to_string t));
      Some Dtype.Bool
  | Ast.E_unop (Ast.Neg, a, loc) -> (
      match infer ctx resolve a with
      | Some (Dtype.Int | Dtype.Float) as t -> t
      | None -> None
      | Some t ->
          err ctx loc "cannot negate a %s" (Dtype.to_string t);
          None)
  | Ast.E_is_null (a, _, _) ->
      ignore (infer ctx resolve a);
      Some Dtype.Bool
  | Ast.E_call (f, _, loc) ->
      err ctx loc "aggregate/function %s() is not allowed in this context" f;
      None

and infer_binop ctx resolve op a b loc =
  let ta = infer ctx resolve a and tb = infer ctx resolve b in
  match op with
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      (match (ta, tb) with
      | Some x, Some y when not (comparable x y) ->
          err ctx loc "cannot compare %s with %s" (Dtype.to_string x)
            (Dtype.to_string y)
      | _ -> ());
      Some Dtype.Bool
  | Ast.And | Ast.Or ->
      let check = function
        | Some Dtype.Bool | None -> ()
        | Some t ->
            err ctx loc "boolean operator applied to %s" (Dtype.to_string t)
      in
      check ta;
      check tb;
      Some Dtype.Bool
  | Ast.Like ->
      (match ta with
      | Some (Dtype.Varchar _) | None -> ()
      | Some t -> err ctx loc "like requires a string, got %s" (Dtype.to_string t));
      (match tb with
      | Some (Dtype.Varchar _) | None -> ()
      | Some t -> err ctx loc "like pattern must be a string, got %s" (Dtype.to_string t));
      Some Dtype.Bool
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod -> (
      match (ta, tb) with
      | Some Dtype.Int, Some Dtype.Int -> Some Dtype.Int
      | Some (Dtype.Int | Dtype.Float), Some (Dtype.Int | Dtype.Float) ->
          Some Dtype.Float
      | Some Dtype.Date, Some Dtype.Int when op = Ast.Add || op = Ast.Sub ->
          Some Dtype.Date
      | Some Dtype.Date, Some Dtype.Date when op = Ast.Sub -> Some Dtype.Int
      | Some (Dtype.Varchar _), Some (Dtype.Varchar _) when op = Ast.Add ->
          Some (Dtype.Varchar 255)
      | None, _ | _, None -> None
      | Some x, Some y ->
          err ctx loc "invalid arithmetic between %s and %s" (Dtype.to_string x)
            (Dtype.to_string y);
          None)

(* ------------------------------------------------------------------ *)
(* Statement checking                                                  *)

let norm = String.lowercase_ascii

(* ------------------------------------------------------------------ *)
(* Feasibility: contradiction detection (Sec. III-A -- "will the query
   result be empty?"). Interval analysis over the top-level conjuncts
   that compare one attribute with a constant. *)

type interval = {
  mutable lo : float;
  mutable lo_strict : bool;
  mutable hi : float;
  mutable hi_strict : bool;
  mutable eq_str : string option;
  mutable conflict : bool;
}

let fresh_interval () =
  {
    lo = neg_infinity;
    lo_strict = false;
    hi = infinity;
    hi_strict = false;
    eq_str = None;
    conflict = false;
  }

let interval_empty iv =
  iv.conflict
  || iv.lo > iv.hi
  || (iv.lo = iv.hi && (iv.lo_strict || iv.hi_strict))

let numeric_of_lit = function
  | Ast.L_int i -> Some (float_of_int i)
  | Ast.L_float f -> Some f
  | _ -> None

let check_satisfiable ctx loc expr =
  let tbl : (string, interval) Hashtbl.t = Hashtbl.create 4 in
  let interval key =
    match Hashtbl.find_opt tbl key with
    | Some iv -> iv
    | None ->
        let iv = fresh_interval () in
        Hashtbl.add tbl key iv;
        iv
  in
  let key q a =
    (match q with Some q -> norm q ^ "." | None -> "") ^ norm a
  in
  let bound op key_str value =
    let iv = interval key_str in
    (match op with
    | Ast.Eq ->
        if value > iv.lo || (value = iv.lo && not iv.lo_strict) then begin
          iv.lo <- value;
          iv.lo_strict <- false
        end
        else iv.conflict <- true;
        if value < iv.hi || (value = iv.hi && not iv.hi_strict) then begin
          iv.hi <- value;
          iv.hi_strict <- false
        end
        else iv.conflict <- true
    | Ast.Gt ->
        if value >= iv.lo then begin
          iv.lo <- value;
          iv.lo_strict <- true
        end
    | Ast.Ge ->
        if value > iv.lo then begin
          iv.lo <- value;
          iv.lo_strict <- false
        end
    | Ast.Lt ->
        if value <= iv.hi then begin
          iv.hi <- value;
          iv.hi_strict <- true
        end
    | Ast.Le ->
        if value < iv.hi then begin
          iv.hi <- value;
          iv.hi_strict <- false
        end
    | _ -> ())
  in
  let flip = function
    | Ast.Gt -> Ast.Lt
    | Ast.Ge -> Ast.Le
    | Ast.Lt -> Ast.Gt
    | Ast.Le -> Ast.Ge
    | op -> op
  in
  let rec conjs = function
    | Ast.E_binop (Ast.And, a, b, _) -> conjs a @ conjs b
    | e -> [ e ]
  in
  List.iter
    (fun conj ->
      match conj with
      | Ast.E_binop (op, Ast.E_attr (q, a, _), Ast.E_lit (l, _), _) -> (
          match (numeric_of_lit l, op, l) with
          | Some v, _, _ -> bound op (key q a) v
          | None, Ast.Eq, Ast.L_string s -> (
              let iv = interval (key q a) in
              match iv.eq_str with
              | Some other when other <> s -> iv.conflict <- true
              | _ -> iv.eq_str <- Some s)
          | _ -> ())
      | Ast.E_binop (op, Ast.E_lit (l, _), Ast.E_attr (q, a, _), _) -> (
          match numeric_of_lit l with
          | Some v -> bound (flip op) (key q a) v
          | None -> ())
      | _ -> ())
    (conjs expr);
  Hashtbl.iter
    (fun key_str iv ->
      if interval_empty iv then
        warn ctx loc
          "conditions on %S are contradictory: this query will return an \
           empty result"
          key_str)
    tbl

let table_resolver ?(alias : string option) name schema : resolver =
 fun ~qual ~attr _loc ->
  let qual_ok =
    match qual with
    | None -> true
    | Some q ->
        norm q = norm name
        || (match alias with Some a -> norm q = norm a | None -> false)
  in
  if not qual_ok then
    R_error
      (Printf.sprintf "unknown qualifier %S (expected %s)"
         (Option.get qual) name)
  else
    match schema_lookup schema attr with
    | Some t -> R_type t
    | None ->
        R_error (Printf.sprintf "table %s has no column %S" name attr)

let check_create_table ctx ~name ~cols ~loc =
  if Meta.mem ctx.meta name then err ctx loc "entity %S already declared" name
  else begin
    match
      Schema.make
        (List.map (fun c -> { Schema.name = c.Ast.cd_name; dtype = c.Ast.cd_type }) cols)
    with
    | schema -> Meta.add_table ctx.meta name schema
    | exception Invalid_argument msg -> err ctx loc "%s" msg
  end

let check_create_vertex ctx ~name ~key ~from ~where ~loc =
  if Meta.mem ctx.meta name then begin
    err ctx loc "entity %S already declared" name
  end
  else
    match Meta.find ctx.meta from with
    | None -> err ctx loc "vertex %s: no such table %S" name from
    | Some (Meta.M_vertex _ | Meta.M_edge _ | Meta.M_subgraph _) ->
        err ctx loc
          "vertex %s: %S is not a table (a table name is required here)" name
          from
    | Some (Meta.M_table (schema, _)) ->
        let key_cols =
          List.filter_map
            (fun k ->
              match Schema.find schema k with
              | Some i -> Some { Schema.name = k; dtype = Schema.col_dtype schema i }
              | None ->
                  err ctx loc "vertex %s: table %s has no column %S" name from k;
                  None)
            key
        in
        Option.iter
          (fun e ->
            ignore (infer ctx (table_resolver from schema) e);
            check_satisfiable ctx loc e)
          where;
        if List.length key_cols = List.length key then
          Meta.add_vertex ctx.meta
            {
              Meta.vm_name = name;
              vm_key = Schema.make key_cols;
              vm_attrs = schema;
              vm_source = from;
              vm_size = None;
            }

let edge_resolver ctx ~src_ep ~dst_ep ~(src : Meta.vertex_meta option)
    ~(dst : Meta.vertex_meta option) ~assoc : resolver =
  (* Resolution order for qualified names: endpoint aliases, endpoint type
     names, the associated table, then any other table in the catalog (the
     export edge of Fig. 4 joins through several tables). *)
  fun ~qual ~attr loc ->
    ignore loc;
    match qual with
    | Some q ->
        let try_endpoint ep vm =
          let matches =
            norm q = norm ep.Ast.ve_type
            || (match ep.Ast.ve_alias with Some a -> norm q = norm a | None -> false)
          in
          if not matches then None
          else
            match vm with
            | Some vm -> (
                match schema_lookup vm.Meta.vm_attrs attr with
                | Some t -> Some (R_type t)
                | None ->
                    Some
                      (R_error
                         (Printf.sprintf "vertex type %s has no attribute %S"
                            vm.Meta.vm_name attr)))
            | None -> Some R_unknown
        in
        let try_assoc () =
          match assoc with
          | Some (aname, schema) when norm q = norm aname ->
              Some
                (match schema_lookup schema attr with
                | Some t -> R_type t
                | None ->
                    R_error
                      (Printf.sprintf "table %s has no column %S" aname attr))
          | _ -> None
        in
        let try_catalog () =
          match Meta.find_table ctx.meta q with
          | Some schema ->
              Some
                (match schema_lookup schema attr with
                | Some t -> R_type t
                | None ->
                    R_error (Printf.sprintf "table %s has no column %S" q attr))
          | None -> None
        in
        let first_some l =
          List.fold_left
            (fun acc f -> match acc with Some _ -> acc | None -> f ())
            None l
        in
        (match
           first_some
             [
               (fun () -> try_endpoint src_ep src);
               (fun () -> try_endpoint dst_ep dst);
               try_assoc;
               try_catalog;
             ]
         with
        | Some r -> r
        | None -> R_error (Printf.sprintf "unknown qualifier %S" q))
    | None -> (
        (* Unqualified: search assoc then endpoints; ambiguity is an error. *)
        let hits = ref [] in
        (match assoc with
        | Some (aname, schema) ->
            (match schema_lookup schema attr with
            | Some t -> hits := (aname, t) :: !hits
            | None -> ())
        | None -> ());
        List.iter
          (fun vm_opt ->
            match vm_opt with
            | Some vm -> (
                match schema_lookup vm.Meta.vm_attrs attr with
                | Some t -> hits := (vm.Meta.vm_name, t) :: !hits
                | None -> ())
            | None -> ())
          [ src; dst ];
        match !hits with
        | [ (_, t) ] -> R_type t
        | [] ->
            if src = None || dst = None then R_unknown
            else R_error (Printf.sprintf "unknown attribute %S" attr)
        | _ -> R_error (Printf.sprintf "ambiguous attribute %S (qualify it)" attr))

let check_create_edge ctx ~name ~(src_ep : Ast.vertex_endpoint)
    ~(dst_ep : Ast.vertex_endpoint) ~from ~where ~loc =
  if Meta.mem ctx.meta name then err ctx loc "entity %S already declared" name
  else begin
    let endpoint_meta role ep =
      match Meta.find ctx.meta ep.Ast.ve_type with
      | Some (Meta.M_vertex vm) -> Some vm
      | Some _ ->
          err ctx loc
            "edge %s: %s endpoint %S is not a vertex type (a vertex type is \
             required here)"
            name role ep.Ast.ve_type;
          None
      | None ->
          err ctx loc "edge %s: no such vertex type %S" name ep.Ast.ve_type;
          None
    in
    let src = endpoint_meta "source" src_ep in
    let dst = endpoint_meta "target" dst_ep in
    let assoc =
      match from with
      | None -> None
      | Some tname -> (
          match Meta.find ctx.meta tname with
          | Some (Meta.M_table (schema, _)) -> Some (tname, schema)
          | Some _ ->
              err ctx loc
                "edge %s: %S is not a table (a table name is required here)"
                name tname;
              None
          | None ->
              err ctx loc "edge %s: no such table %S" name tname;
              None)
    in
    Option.iter
      (fun e ->
        ignore (infer ctx (edge_resolver ctx ~src_ep ~dst_ep ~src ~dst ~assoc) e))
      where;
    match (src, dst) with
    | Some _, Some _ ->
        let em_attrs = Option.map snd assoc in
        Meta.add_edge ctx.meta
          {
            Meta.em_name = name;
            em_src = src_ep.Ast.ve_type;
            em_dst = dst_ep.Ast.ve_type;
            em_attrs;
            em_size = None;
          }
    | _ -> ()
  end

let check_ingest ctx ~table ~loc =
  match Meta.find ctx.meta table with
  | Some (Meta.M_table _) -> ()
  | Some _ ->
      err ctx loc "ingest: %S is not a table (a table name is required here)"
        table
  | None -> err ctx loc "ingest: no such table %S" table

(* ------------------------------------------------------------------ *)
(* Graph query checking                                                *)

(* What we know about a step while walking a path. *)
type step_info = {
  si_vtype : string option; (* None for unresolved [ ] *)
  si_attrs : Schema.t option;
}

type label_info = { li_step : step_info; li_elementwise : bool; li_is_edge : bool }

type path_env = {
  mutable labels : (string * label_info) list;
  (* step types seen, for validating select targets *)
  mutable step_types : string list;
}


let step_resolver ctx env (current : step_info) : resolver =
 fun ~qual ~attr loc ->
  ignore loc;
  let lookup_in info what =
    match info.si_attrs with
    | None -> R_unknown
    | Some schema -> (
        match schema_lookup schema attr with
        | Some t -> R_type t
        | None -> R_error (Printf.sprintf "%s has no attribute %S" what attr))
  in
  match qual with
  | None -> lookup_in current "this step"
  | Some q -> (
      match List.assoc_opt (norm q) (List.map (fun (k, v) -> (norm k, v)) env.labels) with
      | Some li -> lookup_in li.li_step (Printf.sprintf "label %s" q)
      | None -> (
          match current.si_vtype with
          | Some vt when norm vt = norm q -> lookup_in current vt
          | _ ->
              (* Attributes from previous steps are reachable only via
                 labels (Sec. II-B2). *)
              if Option.is_some (Meta.find_vertex ctx.meta q) then
                R_error
                  (Printf.sprintf
                     "cannot reference step %S here: label it with 'def %s:' \
                      and use the label"
                     q q)
              else R_error (Printf.sprintf "unknown qualifier %S" q)))

let check_vstep ctx env (v : Ast.vstep) : step_info =
  let info =
    match v.Ast.v_kind with
    | Ast.V_any -> { si_vtype = None; si_attrs = None }
    | Ast.V_named n -> (
        match List.assoc_opt (norm n) (List.map (fun (k, i) -> (norm k, i)) env.labels) with
        | Some li when li.li_is_edge ->
            err ctx v.Ast.v_loc
              "%S labels an edge; edge labels can be referenced in \
               conditions and select targets but not as path steps"
              n;
            { si_vtype = None; si_attrs = None }
        | Some li -> li.li_step
        | None -> (
            match Meta.find ctx.meta n with
            | Some (Meta.M_vertex vm) ->
                (match vm.Meta.vm_size with
                | Some 0 ->
                    warn ctx v.Ast.v_loc
                      "vertex type %s has no instances: this query will \
                       return an empty result"
                      n
                | _ -> ());
                { si_vtype = Some n; si_attrs = Some vm.Meta.vm_attrs }
            | Some _ ->
                err ctx v.Ast.v_loc
                  "%S is not a vertex type (a vertex type is required in a \
                   path step)"
                  n;
                { si_vtype = None; si_attrs = None }
            | None ->
                err ctx v.Ast.v_loc "no such vertex type or label %S" n;
                { si_vtype = None; si_attrs = None }))
    | Ast.V_seeded (sg, vt) ->
        (if not (Meta.mem ctx.meta sg || Hashtbl.mem ctx.untyped (norm sg)) then
           err ctx v.Ast.v_loc "no such subgraph %S" sg);
        (match Meta.find ctx.meta vt with
        | Some (Meta.M_vertex vm) -> { si_vtype = Some vt; si_attrs = Some vm.Meta.vm_attrs }
        | Some _ ->
            err ctx v.Ast.v_loc "%S is not a vertex type" vt;
            { si_vtype = None; si_attrs = None }
        | None ->
            err ctx v.Ast.v_loc "no such vertex type %S" vt;
            { si_vtype = None; si_attrs = None })
  in
  (match v.Ast.v_cond with
  | Some cond ->
      if v.Ast.v_kind = Ast.V_any then
        err ctx v.Ast.v_loc
          "conditional expressions are not allowed on type-matching [ ] steps"
      else begin
        ignore (infer ctx (step_resolver ctx env info) cond);
        check_satisfiable ctx v.Ast.v_loc cond
      end
  | None -> ());
  (match v.Ast.v_label with
  | Some label ->
      let name = Ast.label_name label in
      if List.mem_assoc (norm name) (List.map (fun (k, i) -> (norm k, i)) env.labels)
      then err ctx v.Ast.v_loc "label %S is already defined" name
      else if Meta.mem ctx.meta name then
        err ctx v.Ast.v_loc "label %S shadows a declared entity" name
      else
        env.labels <-
          ( name,
            {
              li_step = info;
              li_elementwise = (match label with Ast.Each_label _ -> true | _ -> false);
              li_is_edge = false;
            } )
          :: env.labels
  | None -> ());
  (match info.si_vtype with
  | Some t when not (List.mem (norm t) (List.map norm env.step_types)) ->
      env.step_types <- t :: env.step_types
  | _ -> ());
  info

let register_edge_label ctx env (e : Ast.estep) ~attrs =
  match e.Ast.e_label with
  | None -> ()
  | Some label ->
      let name = Ast.label_name label in
      if List.mem_assoc (norm name) (List.map (fun (k, i) -> (norm k, i)) env.labels)
      then err ctx e.Ast.e_loc "label %S is already defined" name
      else if Meta.mem ctx.meta name then
        err ctx e.Ast.e_loc "label %S shadows a declared entity" name
      else
        env.labels <-
          ( name,
            {
              li_step = { si_vtype = None; si_attrs = attrs };
              li_elementwise =
                (match label with Ast.Each_label _ -> true | _ -> false);
              li_is_edge = true;
            } )
          :: env.labels

let register_estep_label ctx env (e : Ast.estep) =
  match e.Ast.e_kind with
  | Ast.E_any -> register_edge_label ctx env e ~attrs:None
  | Ast.E_named n ->
      register_edge_label ctx env e
        ~attrs:
          (match Meta.find_edge ctx.meta n with
          | Some em -> em.Meta.em_attrs
          | None -> None)

let check_estep ctx env (e : Ast.estep) ~(left : step_info) ~(right : step_info) =
  match e.Ast.e_kind with
  | Ast.E_any ->
      (match e.Ast.e_cond with
      | Some _ ->
          err ctx e.Ast.e_loc
            "conditional expressions are not allowed on type-matching [ ] steps"
      | None -> ());
      (* Feasibility: if both endpoint types are known, at least one edge
         type must connect them in the traversal direction. *)
      (match (left.si_vtype, right.si_vtype) with
      | Some lv, Some rv ->
          let src, dst = match e.Ast.e_dir with Ast.Out -> (lv, rv) | Ast.In -> (rv, lv) in
          if Meta.edges_between ctx.meta ~src ~dst = [] then
            warn ctx e.Ast.e_loc
              "no edge type connects %s to %s: this step matches nothing" src
              dst
      | _ -> ())
  | Ast.E_named n -> (
      match Meta.find ctx.meta n with
      | Some (Meta.M_edge em) ->
          (match em.Meta.em_size with
          | Some 0 ->
              warn ctx e.Ast.e_loc
                "edge type %s has no instances: this query will return an \
                 empty result"
                n
          | _ -> ());
          let check_endpoint side expected actual =
            match actual with
            | Some vt when norm vt <> norm expected ->
                err ctx e.Ast.e_loc
                  "edge %s %s vertices of type %s, but the path has %s here" n
                  side expected vt
            | _ -> ()
          in
          (match e.Ast.e_dir with
          | Ast.Out ->
              check_endpoint "leaves from" em.Meta.em_src left.si_vtype;
              check_endpoint "arrives at" em.Meta.em_dst right.si_vtype
          | Ast.In ->
              check_endpoint "leaves from" em.Meta.em_src right.si_vtype;
              check_endpoint "arrives at" em.Meta.em_dst left.si_vtype);
          (match e.Ast.e_cond with
          | Some cond ->
              let info =
                {
                  si_vtype = Some n;
                  si_attrs = em.Meta.em_attrs;
                }
              in
              ignore (infer ctx (step_resolver ctx env info) cond)
          | None -> ())
      | Some _ ->
          err ctx e.Ast.e_loc
            "%S is not an edge type (an edge type is required between vertex \
             steps)"
            n
      | None -> err ctx e.Ast.e_loc "no such edge type %S" n)

let rec check_path ctx env (p : Ast.path) : step_info =
  let head = check_vstep ctx env p.Ast.head in
  List.fold_left
    (fun left seg ->
      match seg with
      | Ast.Seg_step (e, v) ->
          (* The arriving edge's label is visible to the landing vertex's
             condition, so register it first. *)
          register_estep_label ctx env e;
          let right = check_vstep ctx env v in
          check_estep ctx env e ~left ~right;
          right
      | Ast.Seg_regex (body, op, loc) ->
          (match op with
          | Ast.Rx_count n when n < 0 ->
              err ctx loc "regex repetition count must be non-negative"
          | Ast.Rx_count 0 ->
              warn ctx loc "{0} repetition: this group never traverses"
          | _ -> ());
          List.fold_left
            (fun left ((e : Ast.estep), (v : Ast.vstep)) ->
              (if e.Ast.e_label <> None then
                 err ctx e.Ast.e_loc
                   "labels are not supported inside path regexes");
              (if v.Ast.v_label <> None then
                 err ctx v.Ast.v_loc
                   "labels are not supported inside path regexes");
              (match v.Ast.v_kind with
              | Ast.V_seeded _ ->
                  err ctx v.Ast.v_loc
                    "subgraph seeds are not allowed inside regexes"
              | _ -> ());
              let right = check_vstep ctx env v in
              check_estep ctx env e ~left ~right;
              right)
            left body)
    head p.Ast.segments

and check_multipath ctx env = function
  | Ast.M_path p -> ignore (check_path ctx env p)
  | Ast.M_and (a, b) ->
      (* and-composition is only well defined when the operands share a
         label (Sec. II-B3): collect left labels first. *)
      check_multipath ctx env a;
      let before = List.map fst env.labels in
      check_multipath ctx env b;
      ignore before
  | Ast.M_or (a, b) ->
      check_multipath ctx env a;
      check_multipath ctx env b

(* Does an and-composition share at least one label between operands? *)
let rec collect_refs acc (p : Ast.multipath) =
  match p with
  | Ast.M_path { head; segments } ->
      let add_v acc (v : Ast.vstep) =
        match v.Ast.v_kind with Ast.V_named n -> n :: acc | _ -> acc
      in
      let acc = add_v acc head in
      List.fold_left
        (fun acc -> function
          | Ast.Seg_step (_, v) -> add_v acc v
          | Ast.Seg_regex (body, _, _) ->
              List.fold_left (fun acc (_, v) -> add_v acc v) acc body)
        acc segments
  | Ast.M_and (a, b) | Ast.M_or (a, b) -> collect_refs (collect_refs acc a) b

let rec collect_labels acc (p : Ast.multipath) =
  match p with
  | Ast.M_path { head; segments } ->
      let add_v acc (v : Ast.vstep) =
        match v.Ast.v_label with
        | Some l -> Ast.label_name l :: acc
        | None -> acc
      in
      let add_e acc (e : Ast.estep) =
        match e.Ast.e_label with
        | Some l -> Ast.label_name l :: acc
        | None -> acc
      in
      let acc = add_v acc head in
      List.fold_left
        (fun acc -> function
          | Ast.Seg_step (e, v) -> add_v (add_e acc e) v
          | Ast.Seg_regex (body, _, _) ->
              List.fold_left
                (fun acc (e, v) -> add_v (add_e acc e) v)
                acc body)
        acc segments
  | Ast.M_and (a, b) | Ast.M_or (a, b) -> collect_labels (collect_labels acc a) b

let check_and_sharing ctx loc (mp : Ast.multipath) =
  let rec go = function
    | Ast.M_and (a, b) ->
        let left_labels = List.map norm (collect_labels [] a) in
        let right_refs = List.map norm (collect_refs [] b) in
        let right_labels = List.map norm (collect_labels [] b) in
        let left_refs = List.map norm (collect_refs [] a) in
        let shared =
          List.exists (fun l -> List.mem l right_refs) left_labels
          || List.exists (fun l -> List.mem l left_refs) right_labels
        in
        if not shared then
          err ctx loc
            "'and' composition of path queries requires a shared label \
             between the operands";
        go a;
        go b
    | Ast.M_or (a, b) ->
        go a;
        go b
    | Ast.M_path _ -> ()
  in
  go mp

let target_schema ctx env (targets : Ast.target list) ~loc :
    Schema.col list option =
  (* Infer the output schema of a graph select. None = statically unknown
     (e.g. select * over a path with variant steps). *)
  let resolve ~qual ~attr l : resolution =
    ignore l;
    match qual with
    | Some q -> (
        match
          List.assoc_opt (norm q) (List.map (fun (k, v) -> (norm k, v)) env.labels)
        with
        | Some li -> (
            match li.li_step.si_attrs with
            | Some schema -> (
                match schema_lookup schema attr with
                | Some t -> R_type t
                | None ->
                    R_error (Printf.sprintf "label %s has no attribute %S" q attr))
            | None -> R_unknown)
        | None -> (
            match Meta.find_vertex ctx.meta q with
            | Some vm ->
                if not (List.mem (norm q) (List.map norm env.step_types)) then
                  R_error
                    (Printf.sprintf "%S does not appear as a step in this query" q)
                else (
                  match schema_lookup vm.Meta.vm_attrs attr with
                  | Some t -> R_type t
                  | None ->
                      R_error
                        (Printf.sprintf "vertex type %s has no attribute %S" q
                           attr))
            | None -> R_error (Printf.sprintf "unknown qualifier %S" q)))
    | None ->
        R_error
          (Printf.sprintf
             "attribute %S must be qualified by a step type or label in a \
              graph select"
             attr)
  in
  let cols =
    List.map
      (fun t ->
        match t with
        | Ast.T_star -> None
        | Ast.T_expr (e, alias) -> (
            let ty = infer ctx resolve e in
            let name =
              match (alias, e) with
              | Some a, _ -> Some a
              | None, Ast.E_attr (_, a, _) -> Some a
              | None, _ -> None
            in
            match (name, ty) with
            | Some n, Some ty -> Some { Schema.name = n; dtype = ty }
            | Some n, None -> Some { Schema.name = n; dtype = Dtype.Varchar 255 }
            | None, _ ->
                err ctx loc "computed select target needs an 'as' alias";
                None))
      targets
  in
  if List.for_all Option.is_some cols then Some (List.map Option.get cols)
  else None

let register_result ctx (into : Ast.into) (schema : Schema.col list option) =
  match into with
  | Ast.Into_nothing -> ()
  | Ast.Into_subgraph n ->
      if Meta.mem ctx.meta n then () (* overwrite allowed for results *)
      else Meta.add_subgraph ctx.meta n []
  | Ast.Into_table n -> (
      if Meta.mem ctx.meta n || Hashtbl.mem ctx.untyped (norm n) then ()
      else
        match schema with
        | Some cols -> (
            match Schema.make cols with
            | schema -> Meta.add_table ctx.meta n schema
            | exception Invalid_argument _ -> Hashtbl.replace ctx.untyped (norm n) ())
        | None -> Hashtbl.replace ctx.untyped (norm n) ())

let check_select_graph ctx (sg : Ast.select_graph) =
  let env = { labels = []; step_types = [] } in
  check_multipath ctx env sg.Ast.sg_path;
  check_and_sharing ctx sg.Ast.sg_loc sg.Ast.sg_path;
  (* Targets: for "into subgraph", bare names must be step types or
     labels; for table output, qualified attributes. *)
  let is_subgraph_output =
    match sg.Ast.sg_into with Ast.Into_subgraph _ -> true | _ -> false
  in
  let schema =
    if is_subgraph_output then begin
      List.iter
        (fun t ->
          match t with
          | Ast.T_star -> ()
          | Ast.T_expr (Ast.E_attr (None, name, l), None) ->
              let is_label =
                List.mem_assoc (norm name)
                  (List.map (fun (k, v) -> (norm k, v)) env.labels)
              in
              let is_step = List.mem (norm name) (List.map norm env.step_types) in
              if not (is_label || is_step) then
                err ctx l
                  "%S is not a step of this query (subgraph targets must \
                   name steps or labels)"
                  name
          | Ast.T_expr (e, _) ->
              err ctx (Ast.expr_loc e)
                "subgraph output selects steps or labels, not expressions")
        sg.Ast.sg_targets;
      None
    end
    else target_schema ctx env sg.Ast.sg_targets ~loc:sg.Ast.sg_loc
  in
  register_result ctx sg.Ast.sg_into schema

(* ------------------------------------------------------------------ *)
(* Table select checking                                               *)

let check_select_table ctx (st : Ast.select_table) =
  let sources =
    match st.Ast.st_from with
    | Ast.From_table (n, a) -> [ (n, a) ]
    | Ast.From_join (srcs, _) -> srcs
  in
  let resolved =
    List.filter_map
      (fun (n, alias) ->
        if Hashtbl.mem ctx.untyped (norm n) then None
        else
          match Meta.find ctx.meta n with
          | Some (Meta.M_table (schema, size)) ->
              (match size with
              | Some 0 ->
                  warn ctx st.Ast.st_loc
                    "table %s is empty: this query will return no rows" n
              | _ -> ());
              Some (n, alias, schema)
          | Some _ ->
              err ctx st.Ast.st_loc
                "%S is not a table (a table name is required in 'from \
                 table')"
                n;
              None
          | None ->
              err ctx st.Ast.st_loc "no such table %S" n;
              None)
      sources
  in
  let any_untyped =
    List.exists (fun (n, _) -> Hashtbl.mem ctx.untyped (norm n)) sources
  in
  let resolve : resolver =
   fun ~qual ~attr _loc ->
    if any_untyped then R_unknown
    else
      match qual with
      | Some q -> (
          match
            List.find_opt
              (fun (n, alias, _) ->
                norm n = norm q
                || (match alias with Some a -> norm a = norm q | None -> false))
              resolved
          with
          | Some (n, _, schema) -> (
              match schema_lookup schema attr with
              | Some t -> R_type t
              | None -> R_error (Printf.sprintf "table %s has no column %S" n attr))
          | None -> (
              (* Flattened path-result tables (Fig. 13) name columns
                 "Step.attr"; accept the dotted spelling as a column. *)
              let dotted = q ^ "." ^ attr in
              let hits =
                List.filter_map
                  (fun (_, _, schema) -> schema_lookup schema dotted)
                  resolved
              in
              match hits with
              | [ t ] -> R_type t
              | _ -> R_error (Printf.sprintf "unknown qualifier %S" q)))
      | None -> (
          let hits =
            List.filter_map
              (fun (n, _, schema) ->
                Option.map (fun t -> (n, t)) (schema_lookup schema attr))
              resolved
          in
          match hits with
          | [ (_, t) ] -> R_type t
          | [] -> R_error (Printf.sprintf "unknown column %S" attr)
          | _ -> R_error (Printf.sprintf "ambiguous column %S (qualify it)" attr))
  in
  Option.iter
    (fun e ->
      ignore (infer ctx resolve e);
      check_satisfiable ctx st.Ast.st_loc e)
    st.Ast.st_where;
  (match st.Ast.st_from with
  | Ast.From_join (_, Some e) ->
      ignore (infer ctx resolve e);
      check_satisfiable ctx st.Ast.st_loc e
  | _ -> ());
  (* Group-by columns must resolve. *)
  List.iter
    (fun (q, c) ->
      match resolve ~qual:q ~attr:c st.Ast.st_loc with
      | R_error msg -> err ctx st.Ast.st_loc "group by: %s" msg
      | _ -> ())
    st.Ast.st_group_by;
  let grouped = st.Ast.st_group_by <> [] in
  (* Target checking; aggregates allowed here. *)
  let known_aggs = [ "count"; "sum"; "avg"; "min"; "max" ] in
  let check_agg_call f args loc =
    if not (List.mem f known_aggs) then
      err ctx loc "unknown aggregate function %S" f
    else
      match args with
      | [ Ast.A_star ] ->
          if f <> "count" then err ctx loc "%s(*) is not valid; only count(*)" f
      | [ Ast.A_expr e ] -> ignore (infer ctx resolve e)
      | _ -> err ctx loc "aggregate %s takes exactly one argument" f
  in
  let target_cols =
    List.filter_map
      (fun t ->
        match t with
        | Ast.T_star -> None
        | Ast.T_expr (e, alias) -> (
            let ty =
              match e with
              | Ast.E_call (f, args, l) ->
                  check_agg_call f args l;
                  Some
                    (match f with
                    | "count" -> Dtype.Int
                    | "avg" -> Dtype.Float
                    | _ -> (
                        match args with
                        | [ Ast.A_expr inner ] -> (
                            match infer ctx resolve inner with
                            | Some t -> t
                            | None -> Dtype.Float)
                        | _ -> Dtype.Float))
              | _ ->
                  (if grouped then
                     (* Non-aggregate targets must be group keys. *)
                     match e with
                     | Ast.E_attr (q, a, l) ->
                         let in_keys =
                           List.exists
                             (fun (gq, gc) ->
                               norm gc = norm a
                               && (match (gq, q) with
                                  | None, _ | _, None -> true
                                  | Some x, Some y -> norm x = norm y))
                             st.Ast.st_group_by
                         in
                         if not in_keys then
                           err ctx l
                             "column %S must appear in group by or inside an \
                              aggregate"
                             a
                     | _ ->
                         err ctx (Ast.expr_loc e)
                           "non-aggregate select target with group by must \
                            be a grouping column");
                  infer ctx resolve e
            in
            let name =
              match (alias, e) with
              | Some a, _ -> Some a
              | None, Ast.E_attr (_, a, _) -> Some a
              | None, Ast.E_call (f, _, _) -> Some f
              | None, _ -> None
            in
            match name with
            | Some n ->
                Some
                  {
                    Schema.name = n;
                    dtype = (match ty with Some t -> t | None -> Dtype.Varchar 255);
                  }
            | None ->
                err ctx st.Ast.st_loc "computed select target needs an 'as' alias";
                None))
      st.Ast.st_targets
  in
  (* order by may reference target aliases. *)
  let order_resolve : resolver =
   fun ~qual ~attr loc ->
    match qual with
    | None
      when List.exists (fun c -> norm c.Schema.name = norm attr) target_cols ->
        R_type
          (List.find (fun c -> norm c.Schema.name = norm attr) target_cols)
            .Schema.dtype
    | _ -> resolve ~qual ~attr loc
  in
  List.iter (fun (e, _) -> ignore (infer ctx order_resolve e)) st.Ast.st_order_by;
  (match st.Ast.st_top with
  | Some n when n <= 0 -> err ctx st.Ast.st_loc "top %d: count must be positive" n
  | _ -> ());
  (match st.Ast.st_into with
  | Ast.Into_subgraph _ ->
      err ctx st.Ast.st_loc "a table select cannot produce a subgraph"
  | _ -> ());
  let has_star = List.exists (fun t -> t = Ast.T_star) st.Ast.st_targets in
  let schema =
    if has_star then
      match resolved with
      | [ (_, _, schema) ] when List.length sources = 1 ->
          Some (Array.to_list (Schema.cols schema))
      | _ -> None
    else Some target_cols
  in
  register_result ctx st.Ast.st_into schema

(* ------------------------------------------------------------------ *)

let check_stmt_inner ctx stmt =
  match stmt with
  | Ast.Create_table { ct_name; ct_cols; ct_loc } ->
      check_create_table ctx ~name:ct_name ~cols:ct_cols ~loc:ct_loc
  | Ast.Create_vertex { cv_name; cv_key; cv_from; cv_where; cv_loc } ->
      check_create_vertex ctx ~name:cv_name ~key:cv_key ~from:cv_from
        ~where:cv_where ~loc:cv_loc
  | Ast.Create_edge { ce_name; ce_src; ce_dst; ce_from; ce_where; ce_loc } ->
      check_create_edge ctx ~name:ce_name ~src_ep:ce_src ~dst_ep:ce_dst
        ~from:ce_from ~where:ce_where ~loc:ce_loc
  | Ast.Ingest { ing_table; ing_loc; _ } ->
      check_ingest ctx ~table:ing_table ~loc:ing_loc
  | Ast.Set_param { sp_name; sp_value; _ } -> (
      match dtype_of_lit sp_value with
      | Some t -> Hashtbl.replace ctx.params sp_name t
      | None -> Hashtbl.remove ctx.params sp_name)
  | Ast.Select_graph sg -> check_select_graph ctx sg
  | Ast.Select_table st -> check_select_table ctx st

let make_ctx ?(params = []) meta =
  let ctx =
    { meta; params = Hashtbl.create 8; untyped = Hashtbl.create 8; diags = [] }
  in
  List.iter
    (fun (name, lit) ->
      match dtype_of_lit lit with
      | Some t -> Hashtbl.replace ctx.params name t
      | None -> ())
    params;
  ctx

let check_script ?params meta script =
  let ctx = make_ctx ?params meta in
  List.iter (check_stmt_inner ctx) script;
  List.rev ctx.diags

let check_stmt ?params meta stmt =
  let ctx = make_ctx ?params meta in
  check_stmt_inner ctx stmt;
  List.rev ctx.diags
