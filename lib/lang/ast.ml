(** Abstract syntax of GraQL scripts. Produced by {!Parser}, consumed by
    the static analyzer and the IR compiler. *)

module Dtype = Graql_storage.Dtype

type binop =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | And
  | Or
  | Like

type unop = Not | Neg

type lit =
  | L_int of int
  | L_float of float
  | L_string of string
  | L_bool of bool
  | L_null

type expr =
  | E_lit of lit * Loc.t
  | E_param of string * Loc.t  (** [%Name%] *)
  | E_attr of string option * string * Loc.t  (** [qualifier.]attribute *)
  | E_binop of binop * expr * expr * Loc.t
  | E_unop of unop * expr * Loc.t
  | E_is_null of expr * bool * Loc.t  (** [x is null] / [x is not null] *)
  | E_call of string * call_arg list * Loc.t  (** count(...), sum(...), ... *)

and call_arg = A_star | A_expr of expr

let expr_loc = function
  | E_lit (_, l)
  | E_param (_, l)
  | E_attr (_, _, l)
  | E_binop (_, _, _, l)
  | E_unop (_, _, l)
  | E_is_null (_, _, l)
  | E_call (_, _, l) ->
      l

(** Step labels (Sec. II-B2). *)
type label =
  | Set_label of string  (** [def X:] — set semantics, Eq. 6 *)
  | Each_label of string  (** [foreach x:] — element-wise, Eq. 8 *)

let label_name = function Set_label n | Each_label n -> n

(** Vertex step head. [V_named] covers both vertex-type names and label
    references — resolution needs the catalog and label environment, so it
    happens in analysis, not parsing. *)
type vertex_kind =
  | V_named of string
  | V_any  (** [\[ \]] type-matching metavariable *)
  | V_seeded of string * string  (** [result.VertexType] — Fig. 12 *)

type vstep = {
  v_kind : vertex_kind;
  v_label : label option;
  v_cond : expr option;  (** [( )] and absence both mean no filter *)
  v_loc : Loc.t;
}

type edge_kind = E_named of string | E_any

type direction = Out | In
(** [--e--> ] is [Out]; [<--e--] is [In] (traverse the edge backwards). *)

type estep = {
  e_kind : edge_kind;
  e_dir : direction;
  e_label : label option;
      (** labels name edges too (Sec. II-B2): [--def E: feature-->] *)
  e_cond : expr option;
  e_loc : Loc.t;
}

type rx_op = Rx_star | Rx_plus | Rx_count of int

(** A path is a head vertex step followed by segments. *)
type segment =
  | Seg_step of estep * vstep
  | Seg_regex of (estep * vstep) list * rx_op * Loc.t
      (** [( --\[ \]--> \[ \] )+] — Fig. 10 *)

type path = { head : vstep; segments : segment list }

(** Multi-path composition (Sec. II-B3). *)
type multipath =
  | M_path of path
  | M_and of multipath * multipath
  | M_or of multipath * multipath

type into =
  | Into_table of string
  | Into_subgraph of string
  | Into_nothing  (** print / return to client *)

type target = T_star | T_expr of expr * string option  (** expr [as alias] *)

type order_dir = Asc | Desc

type table_source =
  | From_table of string * string option  (** name [as alias] *)
  | From_join of (string * string option) list * expr option
      (** [from table a, b where ...] implicit join *)

type select_table = {
  st_distinct : bool;
  st_top : int option;
  st_targets : target list;
  st_from : table_source;
  st_where : expr option;
  st_group_by : (string option * string) list;  (** qualified column refs *)
  st_order_by : (expr * order_dir) list;
  st_into : into;
  st_loc : Loc.t;
}

type select_graph = {
  sg_targets : target list;
  sg_path : multipath;
  sg_into : into;
  sg_loc : Loc.t;
}

type col_decl = { cd_name : string; cd_type : Dtype.t; cd_loc : Loc.t }

type vertex_endpoint = { ve_type : string; ve_alias : string option }

type stmt =
  | Create_table of { ct_name : string; ct_cols : col_decl list; ct_loc : Loc.t }
  | Create_vertex of {
      cv_name : string;
      cv_key : string list;
      cv_from : string;
      cv_where : expr option;
      cv_loc : Loc.t;
    }
  | Create_edge of {
      ce_name : string;
      ce_src : vertex_endpoint;
      ce_dst : vertex_endpoint;
      ce_from : string option;  (** [from table T] associated table *)
      ce_where : expr option;
      ce_loc : Loc.t;
    }
  | Ingest of { ing_table : string; ing_file : string; ing_loc : Loc.t }
  | Select_graph of select_graph
  | Select_table of select_table
  | Set_param of { sp_name : string; sp_value : lit; sp_loc : Loc.t }

type script = stmt list

let stmt_loc = function
  | Create_table { ct_loc; _ } -> ct_loc
  | Create_vertex { cv_loc; _ } -> cv_loc
  | Create_edge { ce_loc; _ } -> ce_loc
  | Ingest { ing_loc; _ } -> ing_loc
  | Select_graph { sg_loc; _ } -> sg_loc
  | Select_table { st_loc; _ } -> st_loc
  | Set_param { sp_loc; _ } -> sp_loc

(** Name of the entity a statement defines, if any — used by the
    dependence scheduler (Sec. III-B1). *)
let stmt_defines = function
  | Create_table { ct_name; _ } -> Some ct_name
  | Create_vertex { cv_name; _ } -> Some cv_name
  | Create_edge { ce_name; _ } -> Some ce_name
  | Select_graph { sg_into = Into_table n | Into_subgraph n; _ } -> Some n
  | Select_table { st_into = Into_table n | Into_subgraph n; _ } -> Some n
  | Ingest _ | Set_param _
  | Select_graph { sg_into = Into_nothing; _ }
  | Select_table { st_into = Into_nothing; _ } ->
      None

(** Short operation label ("ingest:Offers", "select:Products") — names the
    work a statement dispatches to the backend, so fault plans and traces
    can target statements by operation and table. *)
let stmt_kind = function
  | Create_table { ct_name; _ } -> "create_table:" ^ ct_name
  | Create_vertex { cv_name; _ } -> "create_vertex:" ^ cv_name
  | Create_edge { ce_name; _ } -> "create_edge:" ^ ce_name
  | Ingest { ing_table; _ } -> "ingest:" ^ ing_table
  | Select_graph _ -> "select_graph"
  | Select_table { st_from = From_table (n, _); _ } -> "select:" ^ n
  | Select_table _ -> "select"
  | Set_param { sp_name; _ } -> "set:" ^ sp_name
